"""Ablation: AXI-REALM vs. the related-work regulators (Section II).

Compares, on the same two-manager contention scenario, what each baseline
buys you:

* **none**   — bare crossbar: collapse + vulnerable to stall DoS;
* **ABU**    — budget only: bandwidth capped but long bursts still spike
  the core's latency, and stall DoS works;
* **ABE**    — burst equalisation only: latency restored but a hog's
  bandwidth is uncapped, and stall DoS works;
* **C&F**    — write forwarding only: DoS-proof but no fairness at all;
* **REALM**  — splitting + budget + write buffer + monitoring.
"""

import pytest

from conftest import emit
from repro.axi import AxiBundle
from repro.baselines import AbeEqualizer, AbuRegulator, CutForwardUnit
from repro.interconnect import AddressMap, AxiCrossbar
from repro.mem import SramMemory
from repro.realm import RealmUnit, RealmUnitParams, RegionConfig
from repro.sim import Simulator
from repro.traffic import CoreModel, DmaEngine, StallingWriter, susan_like_trace
from repro.traffic.driver import ManagerDriver

MEM_SIZE = 0x40000
DMA_BUDGET = 2048
PERIOD = 1000


def _attach_regulator(sim, kind, up, name):
    """Returns the crossbar-side bundle for the managed port."""
    if kind == "none":
        return up
    down = AxiBundle(sim, f"{name}.down")
    if kind == "abu":
        sim.add(AbuRegulator(up, down, budget_bytes=DMA_BUDGET,
                             period_cycles=PERIOD, name=name))
    elif kind == "abe":
        sim.add(AbeEqualizer(up, down, nominal_burst=1, max_outstanding=4,
                             name=name))
    elif kind == "cnf":
        sim.add(CutForwardUnit(up, down, depth_beats=256, name=name))
    elif kind == "realm":
        unit = sim.add(RealmUnit(up, down, RealmUnitParams(), name=name))
        unit.set_granularity(1)
        unit.configure_region(
            0, RegionConfig(base=0, size=MEM_SIZE, budget_bytes=DMA_BUDGET,
                            period_cycles=PERIOD)
        )
    else:  # pragma: no cover
        raise ValueError(kind)
    return down


def _contention_run(kind, with_dma=True):
    sim = Simulator()
    core_up = AxiBundle(sim, "core")
    dma_up = AxiBundle(sim, "dma")
    dma_down = _attach_regulator(sim, kind, dma_up, f"reg.{kind}")
    sub = AxiBundle(sim, "mem", capacity=4)
    amap = AddressMap()
    amap.add_range(0x0, MEM_SIZE, port=0)
    sim.add(AxiCrossbar([core_up, dma_down], [sub], amap))
    sim.add(SramMemory(sub, base=0, size=MEM_SIZE))
    trace = susan_like_trace(n_accesses=80, base=0, footprint=8192,
                             beats=2, gap_mean=1)
    core = sim.add(CoreModel(core_up, trace))
    if with_dma:
        sim.add(
            DmaEngine(dma_up, src_base=0x2000, src_size=0x8000,
                      dst_base=0x10000, dst_size=0x8000, burst_beats=256)
        )
    sim.run_until(lambda: core.done, max_cycles=1_000_000, what="core")
    return core.execution_cycles, core.worst_case_latency


def _dos_run(kind):
    sim = Simulator()
    attacker_up = AxiBundle(sim, "attacker")
    victim_up = AxiBundle(sim, "victim")
    attacker_down = _attach_regulator(sim, kind, attacker_up, f"dos.{kind}")
    sub = AxiBundle(sim, "mem")
    amap = AddressMap()
    amap.add_range(0x0, MEM_SIZE, port=0)
    sim.add(AxiCrossbar([attacker_down, victim_up], [sub], amap))
    sim.add(SramMemory(sub, base=0, size=MEM_SIZE))
    sim.add(StallingWriter(attacker_up, beats=16))
    victim = sim.add(ManagerDriver(victim_up))
    # Let the attacker's poisoned AW reach the interconnect first (through
    # whatever regulator is in front of it), then the victim writes.
    sim.run(20)
    op = victim.write(0x100, bytes(8))
    sim.run(2000)
    return op.done


REGULATORS = ("none", "abu", "abe", "cnf", "realm")


@pytest.fixture(scope="module")
def comparison_rows():
    baseline_cycles, baseline_worst = _contention_run("none", with_dma=False)
    rows = []
    for kind in REGULATORS:
        cycles, worst = _contention_run(kind)
        perf = 100.0 * baseline_cycles / cycles
        dos_survived = _dos_run(kind)
        rows.append((kind, perf, worst, dos_survived))
    return rows


def test_baseline_comparison(benchmark, comparison_rows):
    benchmark.pedantic(lambda: _contention_run("realm"), rounds=1,
                       iterations=1)
    lines = [
        f"{'regulator':<10} {'core perf [%]':>14} {'worst lat':>10} "
        f"{'survives stall DoS':>20}"
    ]
    for kind, perf, worst, dos in comparison_rows:
        lines.append(f"{kind:<10} {perf:>14.1f} {worst:>10d} {str(dos):>20}")
    emit("Ablation — REALM vs. ABU / ABE / C&F / none", lines)

    by_kind = {r[0]: r for r in comparison_rows}
    # Bare crossbar collapses and is DoS-vulnerable.
    assert by_kind["none"][1] < 30 and not by_kind["none"][3]
    # ABU caps bandwidth but keeps long-burst latency spikes and is
    # DoS-vulnerable.
    assert by_kind["abu"][2] > 100 and not by_kind["abu"][3]
    # ABE restores fairness/latency but cannot stop the stall DoS.
    assert by_kind["abe"][2] < 60 and not by_kind["abe"][3]
    # C&F survives the DoS but does nothing for fairness.
    assert by_kind["cnf"][3] and by_kind["cnf"][1] < 30
    # REALM does both.
    assert by_kind["realm"][3]
    assert by_kind["realm"][1] > max(by_kind["none"][1], by_kind["cnf"][1])
    assert by_kind["realm"][2] < 60
