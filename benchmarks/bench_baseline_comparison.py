"""Ablation: AXI-REALM vs. the related-work regulators (Section II).

Compares, on the same two-manager contention scenario, what each baseline
buys you:

* **none**   — bare crossbar: collapse + vulnerable to stall DoS;
* **ABU**    — budget only: bandwidth capped but long bursts still spike
  the core's latency, and stall DoS works;
* **ABE**    — burst equalisation only: latency restored but a hog's
  bandwidth is uncapped, and stall DoS works;
* **C&F**    — write forwarding only: DoS-proof but no fairness at all;
* **REALM**  — splitting + budget + write buffer + monitoring.

Each topology is one ``SystemBuilder`` declaration; baselines plug in via
the ``regulator=`` factory hook.
"""

import pytest

from _bench_utils import emit
from repro.baselines import AbeEqualizer, AbuRegulator, CutForwardUnit
from repro.realm import RegionConfig
from repro.system import SystemBuilder
from repro.traffic import CoreModel, DmaEngine, StallingWriter, susan_like_trace

MEM_SIZE = 0x40000
DMA_BUDGET = 2048
PERIOD = 1000

_BASELINES = {
    "abu": lambda up, down: AbuRegulator(up, down, budget_bytes=DMA_BUDGET,
                                         period_cycles=PERIOD),
    "abe": lambda up, down: AbeEqualizer(up, down, nominal_burst=1,
                                         max_outstanding=4),
    "cnf": lambda up, down: CutForwardUnit(up, down, depth_beats=256),
}


def _add_regulated(builder, kind, name):
    """Declare the managed aggressor port for regulator *kind*."""
    if kind == "none":
        builder.add_manager(name)
    elif kind == "realm":
        builder.add_manager(
            name, protect=True, granularity=1,
            regions=[RegionConfig(base=0, size=MEM_SIZE,
                                  budget_bytes=DMA_BUDGET,
                                  period_cycles=PERIOD)],
        )
    else:
        builder.add_manager(name, regulator=_BASELINES[kind])
    return builder


def _contention_run(kind, with_dma=True):
    builder = SystemBuilder().with_crossbar().add_manager("core")
    _add_regulated(builder, kind, "dma")
    builder.add_sram("mem", base=0, size=MEM_SIZE, capacity=4)
    system = builder.build()
    trace = susan_like_trace(n_accesses=80, base=0, footprint=8192,
                             beats=2, gap_mean=1)
    core = system.attach("core", lambda port: CoreModel(port, trace))
    if with_dma:
        system.attach(
            "dma",
            lambda port: DmaEngine(port, src_base=0x2000, src_size=0x8000,
                                   dst_base=0x10000, dst_size=0x8000,
                                   burst_beats=256),
        )
    system.sim.run_until(lambda: core.done, max_cycles=1_000_000, what="core")
    return core.execution_cycles, core.worst_case_latency


def _dos_run(kind):
    builder = SystemBuilder()
    _add_regulated(builder, kind, "attacker")
    builder.add_manager("victim", driver="victim")
    builder.add_sram("mem", base=0, size=MEM_SIZE)
    system = builder.build()
    system.attach("attacker", lambda port: StallingWriter(port, beats=16))
    victim = system.driver("victim")
    # Let the attacker's poisoned AW reach the interconnect first (through
    # whatever regulator is in front of it), then the victim writes.
    system.sim.run(20)
    op = victim.write(0x100, bytes(8))
    system.sim.run(2000)
    return op.done


REGULATORS = ("none", "abu", "abe", "cnf", "realm")


@pytest.fixture(scope="module")
def comparison_rows():
    baseline_cycles, baseline_worst = _contention_run("none", with_dma=False)
    rows = []
    for kind in REGULATORS:
        cycles, worst = _contention_run(kind)
        perf = 100.0 * baseline_cycles / cycles
        dos_survived = _dos_run(kind)
        rows.append((kind, perf, worst, dos_survived))
    return rows


def test_baseline_comparison(benchmark, comparison_rows):
    benchmark.pedantic(lambda: _contention_run("realm"), rounds=1,
                       iterations=1)
    lines = [
        f"{'regulator':<10} {'core perf [%]':>14} {'worst lat':>10} "
        f"{'survives stall DoS':>20}"
    ]
    for kind, perf, worst, dos in comparison_rows:
        lines.append(f"{kind:<10} {perf:>14.1f} {worst:>10d} {str(dos):>20}")
    emit("Ablation — REALM vs. ABU / ABE / C&F / none", lines)

    by_kind = {r[0]: r for r in comparison_rows}
    # Bare crossbar collapses and is DoS-vulnerable.
    assert by_kind["none"][1] < 30 and not by_kind["none"][3]
    # ABU caps bandwidth but keeps long-burst latency spikes and is
    # DoS-vulnerable.
    assert by_kind["abu"][2] > 100 and not by_kind["abu"][3]
    # ABE restores fairness/latency but cannot stop the stall DoS.
    assert by_kind["abe"][2] < 60 and not by_kind["abe"][3]
    # C&F survives the DoS but does nothing for fairness.
    assert by_kind["cnf"][3] and by_kind["cnf"][1] < 30
    # REALM does both.
    assert by_kind["realm"][3]
    assert by_kind["realm"][1] > max(by_kind["none"][1], by_kind["cnf"][1])
    assert by_kind["realm"][2] < 60
