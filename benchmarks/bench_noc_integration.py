"""Figure 1b: AXI-REALM at the ingress of a NoC-based memory system.

The paper claims implementation-agnosticism: the same REALM unit that
regulates a crossbar manager works in front of a network-on-chip.  This
bench runs the contention scenario (latency-critical core vs. bursty DMA
sharing one memory node) on a 3x3 mesh — declared with
``SystemBuilder.with_noc`` — with and without REALM fragmentation and
checks that the fairness story transfers.
"""

import pytest

from _bench_utils import emit
from repro.realm import RegionConfig, UNLIMITED
from repro.system import SystemBuilder
from repro.traffic import CoreModel, DmaEngine, susan_like_trace

MEM_SIZE = 0x40000


def run_noc(with_dma: bool, fragmentation: int):
    region = RegionConfig(base=0, size=MEM_SIZE, budget_bytes=UNLIMITED,
                          period_cycles=UNLIMITED)
    system = (
        SystemBuilder()
        .with_noc(3, 3)
        .add_manager("core", protect=True, granularity=fragmentation,
                     regions=[region], node=(0, 0))
        .add_manager("dma", protect=True, granularity=fragmentation,
                     regions=[region], node=(0, 2))
        .add_sram("mem", base=0, size=MEM_SIZE, capacity=4, node=(2, 1))
        .build()
    )
    core = system.attach(
        "core",
        lambda port: CoreModel(
            port, susan_like_trace(n_accesses=60, footprint=8192, beats=2)
        ),
    )
    if with_dma:
        system.attach(
            "dma",
            lambda port: DmaEngine(port, src_base=0x8000, src_size=0x8000,
                                   dst_base=0x10000, dst_size=0x8000,
                                   burst_beats=256),
        )
    system.sim.run_until(lambda: core.done, max_cycles=1_000_000, what="core")
    return core.execution_cycles, core.worst_case_latency


def test_noc_integration(benchmark):
    baseline, base_worst = run_noc(with_dma=False, fragmentation=256)
    uncontrolled, unc_worst = run_noc(with_dma=True, fragmentation=256)
    regulated, reg_worst = benchmark.pedantic(
        lambda: run_noc(with_dma=True, fragmentation=1),
        rounds=1, iterations=1,
    )
    perf_unc = 100.0 * baseline / uncontrolled
    perf_reg = 100.0 * baseline / regulated
    emit(
        "Figure 1b — REALM on a 3x3 mesh NoC",
        [
            f"{'configuration':<28} {'perf [%]':>9} {'worst lat':>10}",
            f"{'single-source':<28} {100.0:>9.1f} {base_worst:>10d}",
            f"{'DMA, no fragmentation':<28} {perf_unc:>9.1f} "
            f"{unc_worst:>10d}",
            f"{'DMA, fragmentation 1':<28} {perf_reg:>9.1f} "
            f"{reg_worst:>10d}",
        ],
    )
    # The crossbar story transfers to the NoC: collapse, then recovery.
    assert perf_unc < 60
    assert unc_worst > 150
    assert perf_reg > perf_unc + 20
    assert reg_worst < unc_worst / 3
