"""Figure 1b: AXI-REALM at the ingress of a NoC-based memory system.

The paper claims implementation-agnosticism: the same REALM unit that
regulates a crossbar manager works in front of a network-on-chip.  This
bench runs the contention scenario (latency-critical core vs. bursty DMA
sharing one memory node) on a 3x3 mesh with and without REALM
fragmentation and checks that the fairness story transfers.
"""

import pytest

from conftest import emit
from repro.axi import AxiBundle
from repro.interconnect import AddressMap
from repro.interconnect.noc import AxiNoc
from repro.mem import SramMemory
from repro.realm import RealmUnit, RealmUnitParams, RegionConfig, UNLIMITED
from repro.sim import Simulator
from repro.traffic import CoreModel, DmaEngine, susan_like_trace

MEM_SIZE = 0x40000


def run_noc(with_dma: bool, fragmentation: int):
    sim = Simulator()
    core_up = AxiBundle(sim, "core")
    core_down = AxiBundle(sim, "core.noc")
    dma_up = AxiBundle(sim, "dma")
    dma_down = AxiBundle(sim, "dma.noc")
    core_realm = sim.add(
        RealmUnit(core_up, core_down, RealmUnitParams(), "realm.core")
    )
    dma_realm = sim.add(
        RealmUnit(dma_up, dma_down, RealmUnitParams(), "realm.dma")
    )
    for unit in (core_realm, dma_realm):
        unit.set_granularity(fragmentation)
        unit.configure_region(
            0, RegionConfig(base=0, size=MEM_SIZE, budget_bytes=UNLIMITED,
                            period_cycles=UNLIMITED)
        )
    mem_port = AxiBundle(sim, "mem", capacity=4)
    amap = AddressMap()
    amap.add_range(0x0, MEM_SIZE, port=0, name="mem")
    sim.add(
        AxiNoc(3, 3, {(0, 0): core_down, (0, 2): dma_down},
               {(2, 1): mem_port}, amap)
    )
    sim.add(SramMemory(mem_port, base=0, size=MEM_SIZE))
    core = sim.add(CoreModel(
        core_up, susan_like_trace(n_accesses=60, footprint=8192, beats=2)
    ))
    if with_dma:
        sim.add(DmaEngine(dma_up, src_base=0x8000, src_size=0x8000,
                          dst_base=0x10000, dst_size=0x8000,
                          burst_beats=256))
    sim.run_until(lambda: core.done, max_cycles=1_000_000, what="core")
    return core.execution_cycles, core.worst_case_latency


def test_noc_integration(benchmark):
    baseline, base_worst = run_noc(with_dma=False, fragmentation=256)
    uncontrolled, unc_worst = run_noc(with_dma=True, fragmentation=256)
    regulated, reg_worst = benchmark.pedantic(
        lambda: run_noc(with_dma=True, fragmentation=1),
        rounds=1, iterations=1,
    )
    perf_unc = 100.0 * baseline / uncontrolled
    perf_reg = 100.0 * baseline / regulated
    emit(
        "Figure 1b — REALM on a 3x3 mesh NoC",
        [
            f"{'configuration':<28} {'perf [%]':>9} {'worst lat':>10}",
            f"{'single-source':<28} {100.0:>9.1f} {base_worst:>10d}",
            f"{'DMA, no fragmentation':<28} {perf_unc:>9.1f} "
            f"{unc_worst:>10d}",
            f"{'DMA, fragmentation 1':<28} {perf_reg:>9.1f} "
            f"{reg_worst:>10d}",
        ],
    )
    # The crossbar story transfers to the NoC: collapse, then recovery.
    assert perf_unc < 60
    assert unc_worst > 150
    assert perf_reg > perf_unc + 20
    assert reg_worst < unc_worst / 3
