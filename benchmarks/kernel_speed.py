#!/usr/bin/env python3
"""Kernel-speed datapoint: emits ``BENCH_kernel.json``.

Runs the idle-heavy period-sweep workload (the exact sweep of
``bench_period_sweep.py``, shared via ``_bench_utils.run_period_sweep``)
once on the naive tick-everything kernel and once on the active-set
kernel, checks the results are cycle-identical, and records simulated
cycles/second for both plus the speedup.  CI runs this after the test
suite so the performance trajectory of the simulator is tracked PR over
PR.

Run:  python benchmarks/kernel_speed.py [output.json]
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _bench_utils import (  # noqa: E402
    SWEEP_DMA_SHARE,
    SWEEP_GAP_MEAN,
    SWEEP_N_ACCESSES,
    SWEEP_PERIODS,
    run_period_sweep,
)


def main(argv: list[str]) -> int:
    out_path = argv[1] if len(argv) > 1 else "BENCH_kernel.json"
    naive_rows, naive_cycles, naive_s = run_period_sweep(active_set=False)
    active_rows, active_cycles, active_s = run_period_sweep(active_set=True)
    if naive_rows != active_rows:
        print("FATAL: active-set kernel diverged from the naive kernel")
        print("naive :", naive_rows)
        print("active:", active_rows)
        return 1
    payload = {
        "benchmark": "kernel_speed/period_sweep_idle_heavy",
        "python": platform.python_version(),
        "workload": {
            "n_accesses": SWEEP_N_ACCESSES,
            "gap_mean": SWEEP_GAP_MEAN,
            "dma_share": SWEEP_DMA_SHARE,
            "periods": list(SWEEP_PERIODS),
            "simulated_cycles": active_cycles,
        },
        "naive_kernel": {
            "wall_seconds": round(naive_s, 4),
            "cycles_per_second": round(naive_cycles / naive_s),
        },
        "active_set_kernel": {
            "wall_seconds": round(active_s, 4),
            "cycles_per_second": round(active_cycles / active_s),
        },
        "speedup": round(naive_s / active_s, 3),
        "cycle_identical": True,
    }
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(json.dumps(payload, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
