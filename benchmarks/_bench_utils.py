"""Importable helpers for the benchmark harness.

Kept outside ``conftest.py`` so that ``from _bench_utils import emit``
cannot collide with the test suite's ``conftest`` module (pytest imports
every conftest under the same module name).
"""

from __future__ import annotations

import time

# One shared experiment configuration so every figure uses the same
# workload, as in the paper.
N_ACCESSES = 100

# The idle-heavy period-sweep workload: a duty-cycled core (compute gaps
# between accesses) against a budget-throttled DMA at a constant share.
# Shared by bench_period_sweep.py (the figure) and kernel_speed.py (the
# BENCH_kernel.json datapoint) so the two always measure the same thing.
SWEEP_PERIODS = (250, 500, 1000, 2000, 4000)
SWEEP_DMA_SHARE = 0.125
SWEEP_GAP_MEAN = 30
SWEEP_N_ACCESSES = 100


def run_period_sweep(active_set: bool):
    """Run the idle-heavy period sweep on the chosen kernel.

    Returns ``(rows, simulated_cycles, wall_seconds)``; rows are
    ``(period, dma_budget, perf_percent, worst_latency, mean_latency)``.
    """
    from repro.analysis import ContentionExperiment

    t0 = time.perf_counter()
    exp = ContentionExperiment(
        n_accesses=SWEEP_N_ACCESSES,
        gap_mean=SWEEP_GAP_MEAN,
        active_set=active_set,
    )
    base = exp.run_single_source()
    cycles = base.sim_cycles
    rows = []
    for period in SWEEP_PERIODS:
        dma_budget = int(8 * period * SWEEP_DMA_SHARE)  # bytes per period
        result = exp.run(
            fragmentation=1,
            core_budget=1 << 40,
            dma_budget=dma_budget,
            period=period,
            label=f"period={period}",
        )
        cycles += result.sim_cycles
        rows.append(
            (period, dma_budget, result.perf_percent,
             result.worst_case_latency, result.latency.mean)
        )
    return rows, cycles, time.perf_counter() - t0


def emit(title: str, lines: list[str]) -> None:
    """Print a reproduction block (visible with -s and in tee'd output)."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}")
    for line in lines:
        print(line)
    print(bar)
