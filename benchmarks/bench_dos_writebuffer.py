"""Section III-A claim: the write buffer prevents denial of service from a
malicious manager that reserves write bandwidth and never completes the
transaction (the C&F attack, [14])."""

import pytest

from _bench_utils import emit
from repro.system import SystemBuilder
from repro.traffic import StallingWriter


def run_attack(protected: bool, horizon: int = 2000):
    """Returns (victim_completed, victim_latency_or_None)."""
    system = (
        SystemBuilder()
        .with_crossbar()
        .add_manager("attacker", protect=protected)
        .add_manager("victim", driver="victim")
        .add_sram("mem", base=0, size=0x10000)
        .build()
    )
    system.attach("attacker", lambda port: StallingWriter(port, beats=256))
    victim = system.driver("victim")
    op = victim.write(0x100, bytes(8))
    system.sim.run(horizon)
    return op.done, (op.latency if op.done else None)


def test_write_buffer_dos_defense(benchmark):
    unprotected_done, _ = run_attack(protected=False)
    protected_done, protected_latency = benchmark.pedantic(
        lambda: run_attack(protected=True), rounds=1, iterations=1
    )
    emit(
        "Section III-A — W-channel stall DoS",
        [
            f"victim write completes without REALM : {unprotected_done}",
            f"victim write completes with REALM    : {protected_done}"
            + (f" ({protected_latency} cycles)" if protected_done else ""),
        ],
    )
    assert not unprotected_done, "attack must succeed on the bare crossbar"
    assert protected_done, "REALM write buffer must protect the victim"
    assert protected_latency < 50
