"""Section III-A claim: the write buffer prevents denial of service from a
malicious manager that reserves write bandwidth and never completes the
transaction (the C&F attack, [14])."""

import pytest

from conftest import emit
from repro.axi import AxiBundle
from repro.interconnect import AddressMap, AxiCrossbar
from repro.mem import SramMemory
from repro.realm import RealmUnit, RealmUnitParams
from repro.sim import Simulator
from repro.traffic import StallingWriter
from repro.traffic.driver import ManagerDriver


def run_attack(protected: bool, horizon: int = 2000):
    """Returns (victim_completed, victim_latency_or_None)."""
    sim = Simulator()
    attacker_up = AxiBundle(sim, "attacker")
    victim_port = AxiBundle(sim, "victim")
    if protected:
        attacker_down = AxiBundle(sim, "attacker.down")
        sim.add(RealmUnit(attacker_up, attacker_down, RealmUnitParams()))
        ports = [attacker_down, victim_port]
    else:
        ports = [attacker_up, victim_port]
    sub = AxiBundle(sim, "mem")
    amap = AddressMap()
    amap.add_range(0x0, 0x10000, port=0)
    sim.add(AxiCrossbar(ports, [sub], amap))
    sim.add(SramMemory(sub, base=0, size=0x10000))
    sim.add(StallingWriter(attacker_up, beats=256))
    victim = sim.add(ManagerDriver(victim_port, name="victim"))
    op = victim.write(0x100, bytes(8))
    sim.run(horizon)
    return op.done, (op.latency if op.done else None)


def test_write_buffer_dos_defense(benchmark):
    unprotected_done, _ = run_attack(protected=False)
    protected_done, protected_latency = benchmark.pedantic(
        lambda: run_attack(protected=True), rounds=1, iterations=1
    )
    emit(
        "Section III-A — W-channel stall DoS",
        [
            f"victim write completes without REALM : {unprotected_done}",
            f"victim write completes with REALM    : {protected_done}"
            + (f" ({protected_latency} cycles)" if protected_done else ""),
        ],
    )
    assert not unprotected_done, "attack must succeed on the bare crossbar"
    assert protected_done, "REALM write buffer must protect the victim"
    assert protected_latency < 50
