#!/usr/bin/env python3
"""Perf-regression gate over ``BENCH_datapath.json``.

Compares the freshest streaming-throughput datapoint against the
committed baseline and fails (exit 1) when any scenario's batched-vs-
per-beat *speedup* regressed by more than ``LIMIT_PERCENT``.  The gate
deliberately compares speedup ratios rather than absolute ticks/sec:
both sides of a ratio are measured on the same machine in the same run,
so the committed baseline stays meaningful across CI runner generations
and developer laptops.

Usage:  python benchmarks/check_datapath_regression.py FRESH [BASELINE]

On top of the relative gate, ``SPEEDUP_FLOORS`` pins an absolute
speedup floor per scenario — a hard contract the fresh datapoint must
meet regardless of what the baseline recorded.  The floors encode what
each scenario's structure admits: ``stream_steady`` spends >90% of its
cycles in value-templated linear spans, so span replay (DESIGN.md
section 11) must keep it far above the per-beat reference; ``fig6a``'s
REALM units carry a 16-deep write buffer whose per-fragment drain/refill
limit cycle is genuinely nonlinear, capping its batched win near 1.1x —
the floor there guards against the batched datapath *losing* to the
per-beat reference, not against missing a speedup the modelled hardware
does not admit.

*FRESH* is a datapoint history whose last entry is the new measurement;
*BASELINE* (default: the same file's second-to-last entry) is the
history whose last entry to compare against.

The last stdout line is machine-readable — ``RESULT {...}`` with the
check name, PASS/FAIL, and every measured ratio — so CI summaries and
log scrapers can read the verdict without parsing the prose table.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

LIMIT_PERCENT = 15.0

# Absolute batched-vs-per-beat speedup each scenario must sustain.
SPEEDUP_FLOORS = {
    "stream_steady": 2.5,
    "fig6a": 0.95,
    "noc_hog": 2.0,
}


def _last_entry(path: Path, offset: int = 1) -> dict:
    history = json.loads(path.read_text(encoding="utf-8"))
    if len(history) < offset:
        raise SystemExit(f"{path}: needs at least {offset} datapoints")
    return history[-offset]


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__)
        return 2
    fresh_path = Path(argv[1])
    fresh = _last_entry(fresh_path)
    if len(argv) > 2:
        baseline = _last_entry(Path(argv[2]))
    else:
        baseline = _last_entry(fresh_path, offset=2)

    failed = False
    measured: dict[str, dict] = {}
    for name, entry in baseline["scenarios"].items():
        fresh_entry = fresh["scenarios"].get(name)
        if fresh_entry is None:
            print(f"{name}: MISSING from the fresh datapoint")
            measured[name] = {"missing": True}
            failed = True
            continue
        was, now = entry["speedup"], fresh_entry["speedup"]
        drop = 100.0 * (was - now) / was
        measured[name] = {
            "baseline_speedup": round(was, 3),
            "fresh_speedup": round(now, 3),
            "drop_percent": round(drop, 2),
        }
        verdict = "ok"
        if drop > LIMIT_PERCENT:
            verdict = f"REGRESSION (> {LIMIT_PERCENT:.0f}%)"
            failed = True
        print(
            f"{name:<14} baseline {was:.2f}x -> fresh {now:.2f}x "
            f"({-drop:+.1f}%)  {verdict}"
        )
    for name, floor in SPEEDUP_FLOORS.items():
        fresh_entry = fresh["scenarios"].get(name)
        if fresh_entry is None:
            continue  # absence is flagged above when the baseline has it
        now = fresh_entry["speedup"]
        measured.setdefault(name, {})["floor"] = floor
        verdict = "ok"
        if now < floor:
            verdict = "BELOW FLOOR"
            failed = True
        print(f"{name:<14} floor {floor:.2f}x -> fresh {now:.2f}x  {verdict}")
    print("RESULT " + json.dumps({
        "check": "datapath_regression",
        "status": "FAIL" if failed else "PASS",
        "limit_percent": LIMIT_PERCENT,
        "scenarios": measured,
    }, sort_keys=True))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
