"""Figure 6b: core performance vs. budget imbalance between the core and
the DSA DMA (fragmentation 1, period 1000 cycles, DMA budget 8 KiB -> 1.6
KiB in equal steps).

Paper result: near-ideal core performance (> 95 %) when distributing the
available bandwidth in favor of the core; the worst-case access latency
falls to (below) the single-source level.

Runs the shipped declarative campaign (``scenarios/fig6b.toml``) — the
same path ``python -m repro run scenarios/fig6b.toml`` exercises.
"""

from pathlib import Path

import pytest

from _bench_utils import emit
from repro.scenario import expand, load_file, run_campaign, run_point

SCENARIO = Path(__file__).resolve().parent.parent / "scenarios" / "fig6b.toml"
RATIOS = (1, 2, 3, 4, 5)


@pytest.fixture(scope="module")
def fig6b_spec():
    return load_file(SCENARIO)


@pytest.fixture(scope="module")
def fig6b_rows(fig6b_spec):
    result = run_campaign(fig6b_spec)
    return [
        (p.label, p.perf_percent, p.worst_case_latency, p.latency.mean)
        for p in result.points
    ]


def test_fig6b_budget_imbalance(benchmark, fig6b_spec, fig6b_rows):
    skewed = next(p for p in expand(fig6b_spec) if p.label == "dma=1/5")
    benchmark.pedantic(lambda: run_point(skewed), rounds=1, iterations=1)
    lines = [
        f"{'configuration':<16} {'perf [%]':>9} {'worst lat':>10} {'mean lat':>9}"
    ]
    for label, perf, worst, mean in fig6b_rows:
        lines.append(f"{label:<16} {perf:>9.1f} {worst:>10d} {mean:>9.1f}")
    emit("Figure 6b — performance vs. budget imbalance (DMA 1/1 .. 1/5)",
         lines)

    by_label = {r[0]: r for r in fig6b_rows}
    perfs = [by_label[f"dma=1/{k}"][1] for k in RATIOS]
    # Shrinking the DMA budget monotonically helps the core...
    assert all(b >= a - 0.5 for a, b in zip(perfs, perfs[1:]))
    # ...reaching near-ideal performance (paper: > 95 %).
    assert perfs[-1] > 93.0
    # Mean latency approaches the single-source level.
    assert by_label["dma=1/5"][3] < by_label["dma=1/1"][3] + 0.1
