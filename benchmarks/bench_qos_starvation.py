"""Ablation: priority (QoS-400) vs. credit (REALM) regulation.

Section II: "AXI-REALM does not introduce the concept of priority, which
may lead to request starvation on low-priority managers.  It relies on a
credit-based mechanism and a granular burst splitter."

We grant a bursty manager high priority (QoS) or a bandwidth budget
(REALM) and measure a background manager's fate: with strict priority the
background manager starves outright; with credits it keeps guaranteed
progress.  Both topologies are ``SystemBuilder`` declarations (the QoS
taggers via the ``regulator=`` hook, the priority-aware crossbar via
``with_crossbar(qos_arbitration=True)``).
"""

import pytest

from _bench_utils import emit
from repro.baselines import QosTagger
from repro.realm import RegionConfig
from repro.system import SystemBuilder
from repro.traffic import BandwidthHog

HORIZON = 5000


def _attach_traffic(system):
    system.attach(
        "hog",
        lambda port: BandwidthHog(port, target_base=0, window=0x8000,
                                  beats=64, max_outstanding=4),
    )
    low = system.driver("low")
    system.sim.run(50)
    for i in range(20):
        low.read(0x9000 + i * 8)
    system.sim.run(HORIZON)
    return len(low.completed)


def run_qos():
    system = (
        SystemBuilder()
        .with_crossbar(qos_arbitration=True)
        .add_manager("hog", regulator=lambda up, down: QosTagger(up, down, qos=8))
        .add_manager("low", regulator=lambda up, down: QosTagger(up, down, qos=0),
                     driver="low")
        .add_sram("mem", base=0, size=0x10000)
        .build()
    )
    return _attach_traffic(system)


def run_realm():
    system = (
        SystemBuilder()
        .with_crossbar()
        .add_manager("hog", protect=True, granularity=1,
                     regions=[RegionConfig(base=0, size=0x10000,
                                           budget_bytes=6000,
                                           period_cycles=1000)])
        .add_manager("low", driver="low")
        .add_sram("mem", base=0, size=0x10000)
        .build()
    )
    return _attach_traffic(system)


def test_priority_starves_credits_do_not(benchmark):
    qos_done = run_qos()
    realm_done = benchmark.pedantic(run_realm, rounds=1, iterations=1)
    emit(
        "Ablation — priority (QoS-400) vs. credits (REALM)",
        [
            "background manager: 20 reads issued while a favored manager "
            f"saturates the link ({HORIZON} cycle horizon)",
            f"  strict QoS priority : {qos_done}/20 completed",
            f"  REALM credits (75%) : {realm_done}/20 completed",
        ],
    )
    assert qos_done == 0, "strict priority must starve the background manager"
    assert realm_done == 20, "credits must guarantee progress"
