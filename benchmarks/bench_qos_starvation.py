"""Ablation: priority (QoS-400) vs. credit (REALM) regulation.

Section II: "AXI-REALM does not introduce the concept of priority, which
may lead to request starvation on low-priority managers.  It relies on a
credit-based mechanism and a granular burst splitter."

We grant a bursty manager high priority (QoS) or a bandwidth budget
(REALM) and measure a background manager's fate: with strict priority the
background manager starves outright; with credits it keeps guaranteed
progress.
"""

import pytest

from conftest import emit
from repro.axi import AxiBundle
from repro.baselines import QosTagger
from repro.interconnect import AddressMap, AxiCrossbar
from repro.mem import SramMemory
from repro.realm import RealmUnit, RealmUnitParams, RegionConfig
from repro.sim import Simulator
from repro.traffic import BandwidthHog, ManagerDriver

HORIZON = 5000


def run_qos():
    sim = Simulator()
    hog_up, hog_down = AxiBundle(sim, "h"), AxiBundle(sim, "hd")
    low_up, low_down = AxiBundle(sim, "l"), AxiBundle(sim, "ld")
    sim.add(QosTagger(hog_up, hog_down, qos=8))
    sim.add(QosTagger(low_up, low_down, qos=0))
    mem = AxiBundle(sim, "mem")
    amap = AddressMap()
    amap.add_range(0x0, 0x10000, port=0)
    sim.add(AxiCrossbar([hog_down, low_down], [mem], amap,
                        qos_arbitration=True))
    sim.add(SramMemory(mem, base=0, size=0x10000))
    sim.add(BandwidthHog(hog_up, target_base=0, window=0x8000, beats=64,
                         max_outstanding=4))
    low = sim.add(ManagerDriver(low_up))
    sim.run(50)
    for i in range(20):
        low.read(0x9000 + i * 8)
    sim.run(HORIZON)
    return len(low.completed)


def run_realm():
    sim = Simulator()
    hog_up, hog_down = AxiBundle(sim, "h"), AxiBundle(sim, "hd")
    low_up = AxiBundle(sim, "l")
    realm = sim.add(RealmUnit(hog_up, hog_down, RealmUnitParams()))
    realm.set_granularity(1)
    realm.configure_region(
        0, RegionConfig(base=0, size=0x10000, budget_bytes=6000,
                        period_cycles=1000)  # ~75% of the link for the hog
    )
    mem = AxiBundle(sim, "mem")
    amap = AddressMap()
    amap.add_range(0x0, 0x10000, port=0)
    sim.add(AxiCrossbar([hog_down, low_up], [mem], amap))
    sim.add(SramMemory(mem, base=0, size=0x10000))
    sim.add(BandwidthHog(hog_up, target_base=0, window=0x8000, beats=64,
                         max_outstanding=4))
    low = sim.add(ManagerDriver(low_up))
    sim.run(50)
    for i in range(20):
        low.read(0x9000 + i * 8)
    sim.run(HORIZON)
    return len(low.completed)


def test_priority_starves_credits_do_not(benchmark):
    qos_done = run_qos()
    realm_done = benchmark.pedantic(run_realm, rounds=1, iterations=1)
    emit(
        "Ablation — priority (QoS-400) vs. credits (REALM)",
        [
            "background manager: 20 reads issued while a favored manager "
            f"saturates the link ({HORIZON} cycle horizon)",
            f"  strict QoS priority : {qos_done}/20 completed",
            f"  REALM credits (75%) : {realm_done}/20 completed",
        ],
    )
    assert qos_done == 0, "strict priority must starve the background manager"
    assert realm_done == 20, "credits must guarantee progress"
