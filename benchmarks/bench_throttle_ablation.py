"""Ablation: the optional throttling unit (Section III-A).

The throttle caps outstanding transactions in proportion to the remaining
budget, spreading a manager's traffic across the period instead of letting
it burn the whole budget at period start and then hit a hard isolation
wall.  We measure the DMA-side effect: with the throttle, the DMA's
traffic is smoothed (its bytes arrive more evenly across the period).
"""

import pytest

from _bench_utils import emit
from repro.analysis import ContentionExperiment

PERIOD = 1000
BUDGET = 2048  # 1/4 of link capacity: forces regulation to act


def _run(throttle: bool):
    exp = ContentionExperiment(n_accesses=80)
    exp.run_single_source()
    result = exp.run(
        fragmentation=1,
        core_budget=8192,
        dma_budget=BUDGET,
        period=PERIOD,
        throttle=throttle,
        label=f"throttle={throttle}",
    )
    return result


def test_throttle_ablation(benchmark):
    off = _run(False)
    on = benchmark.pedantic(lambda: _run(True), rounds=1, iterations=1)
    emit(
        "Ablation — throttling unit on/off (DMA budget 2 KiB / 1000 cycles)",
        [
            f"{'configuration':<16} {'perf [%]':>9} {'worst lat':>10} "
            f"{'mean lat':>9}",
            f"{'throttle off':<16} {off.perf_percent:>9.1f} "
            f"{off.worst_case_latency:>10d} {off.latency.mean:>9.1f}",
            f"{'throttle on':<16} {on.perf_percent:>9.1f} "
            f"{on.worst_case_latency:>10d} {on.latency.mean:>9.1f}",
        ],
    )
    # Both configurations respect the budget and keep the core near
    # baseline; the throttle must not break regulation.
    assert off.perf_percent > 80
    assert on.perf_percent > 80
    # Backpressure modulation keeps worst-case latency no worse than the
    # hard-wall configuration.
    assert on.worst_case_latency <= off.worst_case_latency + 4
