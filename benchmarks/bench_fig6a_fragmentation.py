"""Figure 6a: core performance and worst-case access latency under DSA DMA
contention at varying transfer fragmentation (256 beats down to 1).

Paper result: without reservation the core achieves < 0.7 % of its
single-source performance with >= 264-cycle accesses; fragmentation 1
restores 68.2 % with < 10-cycle accesses.  We reproduce the shape: a
collapse in the uncontrolled case and a monotone recovery toward
near-baseline as fragments shrink.

Runs the shipped declarative campaign (``scenarios/fig6a.toml``) with
the sweep widened to the full 9-point fragmentation axis — the same
path ``python -m repro run scenarios/fig6a.toml`` exercises.
"""

from pathlib import Path

import pytest

from _bench_utils import emit
from repro.scenario import apply_overrides, expand, load_file, run_campaign, run_point

SCENARIO = Path(__file__).resolve().parent.parent / "scenarios" / "fig6a.toml"
FRAGMENTATIONS = (256, 128, 64, 32, 16, 8, 4, 2, 1)


@pytest.fixture(scope="module")
def fig6a_spec():
    return apply_overrides(
        load_file(SCENARIO),
        {
            "campaign.sweep.0.values": list(FRAGMENTATIONS),
            "campaign.sweep.0.labels": [f"frag={f}" for f in FRAGMENTATIONS],
        },
    )


@pytest.fixture(scope="module")
def fig6a_rows(fig6a_spec):
    result = run_campaign(fig6a_spec)
    return [
        (p.label, p.perf_percent, p.worst_case_latency, p.latency.mean)
        for p in result.points
    ]


def test_fig6a_fragmentation_sweep(benchmark, fig6a_spec, fig6a_rows):
    frag1 = next(p for p in expand(fig6a_spec) if p.label == "frag=1")
    benchmark.pedantic(lambda: run_point(frag1), rounds=1, iterations=1)
    lines = [
        f"{'configuration':<22} {'perf [%]':>9} {'worst lat':>10} {'mean lat':>9}"
    ]
    for label, perf, worst, mean in fig6a_rows:
        lines.append(f"{label:<22} {perf:>9.1f} {worst:>10d} {mean:>9.1f}")
    emit("Figure 6a — performance vs. burst fragmentation", lines)

    by_label = {r[0]: r for r in fig6a_rows}
    # Uncontrolled contention collapses performance (paper: 0.7 %).
    assert by_label["without-reservation"][1] < 30.0
    # ...with at least one full 256-beat burst of added latency (paper: 264).
    assert by_label["without-reservation"][2] > 250
    # Fragmentation restores most of the performance (paper: 68.2 %).
    assert by_label["frag=1"][1] > 60.0
    # ...and the worst-case latency falls dramatically (paper: < 10).
    assert by_label["frag=1"][2] < 20
    # Monotone trend across the sweep.
    perfs = [by_label[f"frag={f}"][1] for f in FRAGMENTATIONS]
    assert perfs == sorted(perfs), "finer fragments must not hurt the core"
