#!/usr/bin/env python3
"""Fork-vs-scratch campaign datapoints: how much prefix sharing saves.

Two sweeps, both derived from the shipped ``fig6a.toml`` platform (its
topology, traffic, and warm-up), each appending one tagged payload to
``BENCH_snapshot.json``:

* ``"sweep": "flat"`` — the PR 5 shape: one ``[[schedule]]`` rule
  programs the DMA's REALM budget/period at a fixed cycle, swept over
  the budget value.  Every point is identical up to that firing, so
  the whole campaign shares a single snapshot.

* ``"sweep": "grouped"`` — the fork-*tree* shape: the same settable
  budget axis crossed with a non-settable traffic axis
  (``traffic.dma.burst_beats``).  The burst groups diverge from cycle
  0 and share nothing with each other, but each group still amortizes
  its own prefix behind one snapshot — the grouped execution this
  repo's planner exists for.  The payload carries the planner's tree
  stats next to the measured speedup.

Both variants run scratch and ``fork=True`` interleaved (best of
*ROUNDS*) and verify the digests are byte-identical — fork execution
must never change a result.  ``check_snapshot_regression.py`` gates CI
on the flat ratio and on the grouped sweep's absolute floor.

Run:  python benchmarks/bench_fork_sweep.py [output.json]
"""

from __future__ import annotations

import gc
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _bench_utils import emit  # noqa: E402
from repro.scenario import (  # noqa: E402
    load_file,
    plan_fork,
    plan_fork_tree,
    run_campaign,
)
from repro.scenario.spec import validate  # noqa: E402
from repro.scenario.sweep import expand  # noqa: E402

SCENARIO_DIR = Path(__file__).resolve().parent.parent / "scenarios"
ROUNDS = 3
FORK_CYCLE = 3000
BUDGETS = (512, 2048, 8192, 1 << 40)
# The bench-smoke assertion: forking must beat scratch execution by at
# least this factor.  With a ~3000-cycle prefix shared by 4 points the
# recorded speedups sit well above it; the regression gate guards drift.
MIN_SPEEDUP = 1.15

# Grouped fork-tree variant: two burst groups x four budgets over a
# fixed horizon, with the budget cut at 80% of it.  Scratch simulates
# 8 horizons; the tree simulates 2 prefixes + 8 tails = 3.2 horizons,
# a 2.5x ideal — the absolute floor below keeps a healthy margin for
# snapshot/restore overhead and is CI-gated (an ISSUE acceptance bar,
# not a relative drift check).
GROUPED_HORIZON = 4000
GROUPED_CUT = 3200
GROUPED_BURSTS = (64, 256)
MIN_GROUPED_SPEEDUP = 2.0


def _fork_sweep_spec():
    """fig6a's platform under a schedule-value sweep of the DMA budget."""
    tree = load_file(SCENARIO_DIR / "fig6a.toml").to_dict()
    tree.pop("campaign", None)
    tree.pop("smoke", None)
    tree["schedule"] = [{
        "label": "reserve",
        "at": FORK_CYCLE,
        "set": {
            "realm.dma.region0.budget_bytes": BUDGETS[0],
            "realm.dma.region0.period_cycles": 1000,
        },
    }]
    tree["campaign"] = {
        "sweep": [{
            "field": "schedule.reserve.set.realm.dma.region0.budget_bytes",
            "values": list(BUDGETS),
            "labels": [f"budget={b}" for b in BUDGETS],
        }],
    }
    return validate(tree)


def _grouped_sweep_spec():
    """The flat sweep crossed with a non-settable burst-length axis,
    over a fixed horizon so the amortization is structural."""
    tree = _fork_sweep_spec().to_dict()
    tree["run"] = {"horizon": GROUPED_HORIZON}
    tree["schedule"][0]["at"] = GROUPED_CUT
    tree["campaign"]["sweep"].append({
        "field": "traffic.dma.burst_beats",
        "values": list(GROUPED_BURSTS),
        "labels": [f"burst={b}" for b in GROUPED_BURSTS],
    })
    return validate(tree)


def _time_campaign(spec, fork: bool):
    gc.collect()
    t0 = time.perf_counter()
    result = run_campaign(spec, fork=fork)
    return time.perf_counter() - t0, result


def measure() -> dict:
    spec = _fork_sweep_spec()
    plan = plan_fork(expand(spec))
    assert plan is not None and plan.fork_cycle == FORK_CYCLE, (
        "the derived sweep must expose a provable shared prefix"
    )
    best = {False: float("inf"), True: float("inf")}
    digests = {}
    fork_cycle = None
    for _ in range(ROUNDS):
        # Interleave so both modes see the same machine state.
        for fork in (False, True):
            elapsed, result = _time_campaign(spec, fork)
            best[fork] = min(best[fork], elapsed)
            digests[fork] = result.digest()
            if fork:
                fork_cycle = result.fork_cycle
    assert digests[True] == digests[False], (
        "fork-point execution diverged from the scratch sweep — the "
        "speedup would compare different results"
    )
    total_cycles = sum(
        point["sim_cycles"] for point in digests[False].values()
    )
    return {
        "sweep": "flat",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "rounds": ROUNDS,
        "points": len(digests[False]),
        "fork_cycle": fork_cycle,
        "simulated_cycles_total": total_cycles,
        "prefix_fraction": round(
            len(digests[False]) * fork_cycle / total_cycles, 3
        ),
        "scratch_seconds": round(best[False], 5),
        "fork_seconds": round(best[True], 5),
        "speedup": round(best[False] / best[True], 3),
    }


def measure_grouped() -> dict:
    spec = _grouped_sweep_spec()
    tree = plan_fork_tree(expand(spec))
    plan = tree.describe()
    assert plan["snapshot_nodes"] == len(GROUPED_BURSTS) and plan[
        "fallbacks"
    ], "the grouped sweep must split into burst groups that each snapshot"
    best = {False: float("inf"), True: float("inf")}
    digests = {}
    fork_stats = None
    for _ in range(ROUNDS):
        for fork in (False, True):
            elapsed, result = _time_campaign(spec, fork)
            best[fork] = min(best[fork], elapsed)
            digests[fork] = result.digest()
            if fork:
                fork_stats = result.fork_stats
    assert digests[True] == digests[False], (
        "fork-tree execution diverged from the scratch sweep — the "
        "speedup would compare different results"
    )
    total_cycles = sum(
        point["sim_cycles"] for point in digests[False].values()
    )
    return {
        "sweep": "grouped",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "rounds": ROUNDS,
        "points": len(digests[False]),
        "snapshot_nodes": plan["snapshot_nodes"],
        "tree_nodes": plan["nodes"],
        "simulated_cycles_total": total_cycles,
        "prefix_cycles": fork_stats["executed"]["prefix_cycles"],
        "saved_cycles": fork_stats["executed"]["saved_cycles"],
        "saved_fraction": round(
            fork_stats["executed"]["saved_cycles"] / total_cycles, 3
        ),
        "scratch_seconds": round(best[False], 5),
        "fork_seconds": round(best[True], 5),
        "speedup": round(best[False] / best[True], 3),
    }


def _append(path, payload: dict) -> None:
    file = Path(path)
    history: list = []
    if file.exists():
        history = json.loads(file.read_text(encoding="utf-8"))
    history.append(payload)
    file.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")


def _emit(payload: dict) -> None:
    emit("Fork-point campaign execution (fig6a budget sweep)", [
        f"{payload['points']} points, shared prefix "
        f"{payload['fork_cycle']} cycles "
        f"({100 * payload['prefix_fraction']:.0f}% of simulated work)",
        f"scratch {payload['scratch_seconds']:.3f}s   "
        f"fork {payload['fork_seconds']:.3f}s   "
        f"speedup {payload['speedup']:.2f}x",
    ])


def _emit_grouped(payload: dict) -> None:
    emit("Fork-tree campaign execution (budget x burst grouped sweep)", [
        f"{payload['points']} points, {payload['snapshot_nodes']} "
        f"snapshot nodes, {payload['saved_cycles']} point-cycles saved "
        f"({100 * payload['saved_fraction']:.0f}% of simulated work)",
        f"scratch {payload['scratch_seconds']:.3f}s   "
        f"fork {payload['fork_seconds']:.3f}s   "
        f"speedup {payload['speedup']:.2f}x (floor "
        f"{MIN_GROUPED_SPEEDUP:.1f}x)",
    ])


def test_fork_sweep_datapoint():
    payload = measure()
    _emit(payload)
    _append("BENCH_snapshot.json", payload)
    assert payload["speedup"] >= MIN_SPEEDUP, (
        "fork-point execution no longer pays for itself: "
        f"{payload['speedup']:.2f}x < {MIN_SPEEDUP}x"
    )


def test_grouped_fork_tree_datapoint():
    payload = measure_grouped()
    _emit_grouped(payload)
    _append("BENCH_snapshot.json", payload)
    assert payload["speedup"] >= MIN_GROUPED_SPEEDUP, (
        "grouped fork-tree execution fell below its acceptance floor: "
        f"{payload['speedup']:.2f}x < {MIN_GROUPED_SPEEDUP}x"
    )


def main(argv: list[str]) -> int:
    out_path = argv[1] if len(argv) > 1 else "BENCH_snapshot.json"
    failed = False
    for payload, floor, name in (
        (measure(), MIN_SPEEDUP, "flat fork"),
        (measure_grouped(), MIN_GROUPED_SPEEDUP, "grouped fork-tree"),
    ):
        _append(out_path, payload)
        print(json.dumps(payload, indent=2))
        if payload["speedup"] < floor:
            print(f"FATAL: {name} speedup below {floor}x")
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
