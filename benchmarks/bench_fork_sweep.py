#!/usr/bin/env python3
"""Fork-vs-scratch campaign datapoint: how much a shared prefix saves.

Derives a fork-friendly sweep from the shipped ``fig6a.toml``: the
topology, traffic, and warm-up are the file's own, the campaign is
replaced by a ``[[schedule]]`` rule that programs the DMA's REALM
budget/period at a fixed cycle, swept over the budget value.  Every
point is therefore identical up to that rule's firing — the textbook
fork-point situation (cache warming, REALM settling, and trace ramp-in
all live in the shared prefix).

The bench runs the campaign from scratch and with ``fork=True``
(interleaved, best of *ROUNDS*), verifies the two digests are
byte-identical (fork execution must never change a result), and
appends the speedup to ``BENCH_snapshot.json``;
``check_snapshot_regression.py`` gates CI on the ratio.

Run:  python benchmarks/bench_fork_sweep.py [output.json]
"""

from __future__ import annotations

import gc
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _bench_utils import emit  # noqa: E402
from repro.scenario import load_file, plan_fork, run_campaign  # noqa: E402
from repro.scenario.spec import validate  # noqa: E402
from repro.scenario.sweep import expand  # noqa: E402

SCENARIO_DIR = Path(__file__).resolve().parent.parent / "scenarios"
ROUNDS = 3
FORK_CYCLE = 3000
BUDGETS = (512, 2048, 8192, 1 << 40)
# The bench-smoke assertion: forking must beat scratch execution by at
# least this factor.  With a ~3000-cycle prefix shared by 4 points the
# recorded speedups sit well above it; the regression gate guards drift.
MIN_SPEEDUP = 1.15


def _fork_sweep_spec():
    """fig6a's platform under a schedule-value sweep of the DMA budget."""
    tree = load_file(SCENARIO_DIR / "fig6a.toml").to_dict()
    tree.pop("campaign", None)
    tree.pop("smoke", None)
    tree["schedule"] = [{
        "label": "reserve",
        "at": FORK_CYCLE,
        "set": {
            "realm.dma.region0.budget_bytes": BUDGETS[0],
            "realm.dma.region0.period_cycles": 1000,
        },
    }]
    tree["campaign"] = {
        "sweep": [{
            "field": "schedule.reserve.set.realm.dma.region0.budget_bytes",
            "values": list(BUDGETS),
            "labels": [f"budget={b}" for b in BUDGETS],
        }],
    }
    return validate(tree)


def _time_campaign(spec, fork: bool):
    gc.collect()
    t0 = time.perf_counter()
    result = run_campaign(spec, fork=fork)
    return time.perf_counter() - t0, result


def measure() -> dict:
    spec = _fork_sweep_spec()
    plan = plan_fork(expand(spec))
    assert plan is not None and plan.fork_cycle == FORK_CYCLE, (
        "the derived sweep must expose a provable shared prefix"
    )
    best = {False: float("inf"), True: float("inf")}
    digests = {}
    fork_cycle = None
    for _ in range(ROUNDS):
        # Interleave so both modes see the same machine state.
        for fork in (False, True):
            elapsed, result = _time_campaign(spec, fork)
            best[fork] = min(best[fork], elapsed)
            digests[fork] = result.digest()
            if fork:
                fork_cycle = result.fork_cycle
    assert digests[True] == digests[False], (
        "fork-point execution diverged from the scratch sweep — the "
        "speedup would compare different results"
    )
    total_cycles = sum(
        point["sim_cycles"] for point in digests[False].values()
    )
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "rounds": ROUNDS,
        "points": len(digests[False]),
        "fork_cycle": fork_cycle,
        "simulated_cycles_total": total_cycles,
        "prefix_fraction": round(
            len(digests[False]) * fork_cycle / total_cycles, 3
        ),
        "scratch_seconds": round(best[False], 5),
        "fork_seconds": round(best[True], 5),
        "speedup": round(best[False] / best[True], 3),
    }


def _append(path, payload: dict) -> None:
    file = Path(path)
    history: list = []
    if file.exists():
        history = json.loads(file.read_text(encoding="utf-8"))
    history.append(payload)
    file.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")


def _emit(payload: dict) -> None:
    emit("Fork-point campaign execution (fig6a budget sweep)", [
        f"{payload['points']} points, shared prefix "
        f"{payload['fork_cycle']} cycles "
        f"({100 * payload['prefix_fraction']:.0f}% of simulated work)",
        f"scratch {payload['scratch_seconds']:.3f}s   "
        f"fork {payload['fork_seconds']:.3f}s   "
        f"speedup {payload['speedup']:.2f}x",
    ])


def test_fork_sweep_datapoint():
    payload = measure()
    _emit(payload)
    _append("BENCH_snapshot.json", payload)
    assert payload["speedup"] >= MIN_SPEEDUP, (
        "fork-point execution no longer pays for itself: "
        f"{payload['speedup']:.2f}x < {MIN_SPEEDUP}x"
    )


def main(argv: list[str]) -> int:
    out_path = argv[1] if len(argv) > 1 else "BENCH_snapshot.json"
    payload = measure()
    _append(out_path, payload)
    print(json.dumps(payload, indent=2))
    if payload["speedup"] < MIN_SPEEDUP:
        print(f"FATAL: fork speedup below {MIN_SPEEDUP}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
