"""Ablation: reservation-period selection on an idle-heavy workload.

The M&R unit's monitoring exists to guide budget and period selection
("tracks each manager's access and interference statistics for optimal
budget and period selection").  This bench sweeps the period at a constant
bandwidth share (budget scales with period) on a *duty-cycled* core — a
CVA6 with compute phases between memory bursts, the realistic shape of the
paper's Susan workload — and shows that a constant average share delivers
stable performance for every period choice.

Because the core naps between accesses and the DMA spends most of each
period budget-stalled, this workload is the idle-heavy showcase for the
active-set kernel: the same sweep (shared with ``kernel_speed.py``, which
records it as ``BENCH_kernel.json``) is timed on the naive tick-everything
kernel and on the active-set kernel, and the speedup is part of the
emitted reproduction block.
"""

import pytest

from _bench_utils import emit, run_period_sweep


@pytest.fixture(scope="module")
def period_rows():
    naive_rows, _, t_naive = run_period_sweep(active_set=False)
    rows, _, t_active = run_period_sweep(active_set=True)
    return rows, naive_rows, t_naive, t_active


def test_period_sweep(benchmark, period_rows):
    rows, naive_rows, t_naive, t_active = period_rows
    benchmark.pedantic(
        lambda: run_period_sweep(active_set=True), rounds=1, iterations=1
    )
    speedup = t_naive / t_active
    lines = [
        f"{'period':>7} {'dma budget':>11} {'perf [%]':>9} "
        f"{'worst lat':>10} {'mean lat':>9}"
    ]
    for period, budget, perf, worst, mean in rows:
        lines.append(
            f"{period:>7} {budget:>11} {perf:>9.1f} {worst:>10d} {mean:>9.1f}"
        )
    lines += [
        "",
        f"kernel wall-clock (full sweep): naive {t_naive:.3f}s, "
        f"active-set {t_active:.3f}s -> {speedup:.2f}x speedup",
    ]
    emit(
        "Ablation — reservation period at constant 12.5% DMA share "
        "(duty-cycled core)",
        lines,
    )

    # The active-set kernel must be a pure optimisation: cycle-identical
    # results on every configuration of the sweep.
    assert rows == naive_rows

    perfs = [r[2] for r in rows]
    # The core stays above the unregulated level for every period choice.
    assert min(perfs) > 80
    # All configurations deliver the same *average* bandwidth share, so
    # performance varies only mildly with the period.
    assert max(perfs) - min(perfs) < 15
    # Typically ~2.5x here.  The hard floor only guards against the
    # active-set kernel becoming a pessimisation — the real datapoint is
    # tracked non-fatally by kernel_speed.py (BENCH_kernel.json), and a
    # loaded CI runner must not turn the figure suite red.
    assert speedup > 1.2
