"""Ablation: reservation-period selection.

The M&R unit's monitoring exists to guide budget and period selection
("tracks each manager's access and interference statistics for optimal
budget and period selection").  This bench sweeps the period at a constant
bandwidth share (budget scales with period) and shows the trade-off: short
periods give fine-grained isolation windows (lower worst-case latency for
the core), long periods let the DMA burn its budget in one long burst.
"""

import pytest

from conftest import emit
from repro.analysis import ContentionExperiment

# Constant 25% DMA bandwidth share across all periods.
PERIODS = (250, 500, 1000, 2000, 4000)
SHARE = 0.25


@pytest.fixture(scope="module")
def period_rows(experiment):
    rows = []
    for period in PERIODS:
        dma_budget = int(8 * period * SHARE)  # bytes per period
        result = experiment.run(
            fragmentation=1,
            core_budget=1 << 40,
            dma_budget=dma_budget,
            period=period,
            label=f"period={period}",
        )
        rows.append(
            (period, dma_budget, result.perf_percent,
             result.worst_case_latency, result.latency.mean)
        )
    return rows


def test_period_sweep(benchmark, experiment, period_rows):
    benchmark.pedantic(
        lambda: experiment.run(fragmentation=1, core_budget=1 << 40,
                               dma_budget=2048, period=1000),
        rounds=1, iterations=1,
    )
    lines = [
        f"{'period':>7} {'dma budget':>11} {'perf [%]':>9} "
        f"{'worst lat':>10} {'mean lat':>9}"
    ]
    for period, budget, perf, worst, mean in period_rows:
        lines.append(
            f"{period:>7} {budget:>11} {perf:>9.1f} {worst:>10d} {mean:>9.1f}"
        )
    emit("Ablation — reservation period at constant 25% DMA share", lines)

    perfs = [r[2] for r in period_rows]
    # The core stays above the unregulated level for every period choice.
    assert min(perfs) > 80
    # All configurations deliver the same *average* bandwidth share, so
    # performance varies only mildly with the period.
    assert max(perfs) - min(perfs) < 15
