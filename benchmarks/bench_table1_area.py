"""Table I: area decomposition of the Cheshire SoC.

The REALM rows are recomputed from the Table II area model (the rest are
the published synthesis results); the headline reproduction target is the
2.45 % total area overhead of AXI-REALM at iso-frequency.
"""

import pytest

from _bench_utils import emit
from repro.area import (
    cheshire_decomposition,
    format_table,
    realm_overhead_percent,
)


def test_table1_soc_decomposition(benchmark):
    rows = benchmark.pedantic(cheshire_decomposition, rounds=1, iterations=1)
    overhead = realm_overhead_percent()
    emit(
        "Table I — area decomposition of the Cheshire SoC",
        format_table(rows).splitlines()
        + [
            "",
            f"AXI-REALM area overhead: {overhead:.2f} % "
            "(paper: 2.45 %)",
        ],
    )
    by_unit = {r.unit: r for r in rows}
    # The model lands near the paper's published REALM areas.
    assert by_unit["3 RT Units"].area_kge == pytest.approx(83.6, rel=0.2)
    assert by_unit["RT CFG"].area_kge == pytest.approx(9.8, rel=1.0)
    # The headline claim: ~2.45 % overhead.
    assert 1.8 < overhead < 3.2
    # Decomposition percentages are consistent.
    assert sum(r.percent for r in rows[1:]) == pytest.approx(100.0, abs=0.5)
