#!/usr/bin/env python3
"""Streaming-throughput datapoint: batched datapath vs. per-beat reference.

The active-set kernel (PR 1) wins on idle-heavy workloads but is near-1x
on streaming-heavy ones — no component is ever idle, so every beat still
crosses every hop one tick at a time.  The batched datapath (express
burst forwarding in the crossbar, activity-scoped NoC routing,
event-driven memory latency, batch channel drains) attacks exactly that
regime.  This bench runs the two streaming-heavy shipped scenarios at
smoke scale on both datapaths — interleaved, best of *ROUNDS* — and
reports wall-clock throughput in simulated cycles (ticks) per second.

The appended ``BENCH_datapath.json`` entry records per-scenario speedups;
``check_datapath_regression.py`` gates CI on them.  The gate compares
speedup *ratios*, not absolute ticks/sec, so datapoints from different
machines stay comparable.

Run:  python benchmarks/bench_streaming_throughput.py [output.json]
"""

from __future__ import annotations

import gc
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _bench_utils import emit  # noqa: E402
from repro.scenario import load_file, run_campaign  # noqa: E402

SCENARIO_DIR = Path(__file__).resolve().parent.parent / "scenarios"
SCENARIOS = ("fig6a", "noc_hog", "stream_steady")
ROUNDS = 3
# The bench-smoke assertion: the batched datapath must beat the per-beat
# reference by at least this factor on the best streaming scenario.  Set
# below the recorded datapoints (~3x NoC, ~3.4x span-replay streaming)
# to keep CI robust against noisy runners; the regression gate guards
# the rest.
MIN_BEST_SPEEDUP = 2.0


def _time_campaign(spec, batched: bool) -> tuple[float, int]:
    gc.collect()
    t0 = time.perf_counter()
    result = run_campaign(spec, smoke=True, batched=batched)
    elapsed = time.perf_counter() - t0
    cycles = sum(point.sim_cycles for point in result.points)
    return elapsed, cycles


def measure() -> dict:
    payload: dict = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "rounds": ROUNDS,
        "scenarios": {},
    }
    for name in SCENARIOS:
        spec = load_file(SCENARIO_DIR / f"{name}.toml")
        best = {False: float("inf"), True: float("inf")}
        counted = {}
        cycles = 0
        for _ in range(ROUNDS):
            # Interleave the variants so both see the same machine state.
            for batched in (False, True):
                elapsed, cycles = _time_campaign(spec, batched)
                best[batched] = min(best[batched], elapsed)
                counted[batched] = cycles
        assert counted[False] == counted[True], (
            f"{name}: batched datapath diverged from the per-beat "
            f"reference ({counted[True]} vs {counted[False]} cycles) — "
            "throughput numbers would compare different workloads"
        )
        payload["scenarios"][name] = {
            "simulated_cycles": cycles,
            "per_beat_seconds": round(best[False], 5),
            "batched_seconds": round(best[True], 5),
            "per_beat_ticks_per_second": round(cycles / best[False], 1),
            "batched_ticks_per_second": round(cycles / best[True], 1),
            "speedup": round(best[False] / best[True], 3),
        }
    payload["best_speedup"] = max(
        entry["speedup"] for entry in payload["scenarios"].values()
    )
    return payload


def _append(path, payload: dict) -> None:
    file = Path(path)
    history: list = []
    if file.exists():
        history = json.loads(file.read_text(encoding="utf-8"))
    history.append(payload)
    file.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")


def _emit(payload: dict) -> None:
    lines = []
    for name, entry in payload["scenarios"].items():
        lines.append(
            f"{name:<12} per-beat {entry['per_beat_ticks_per_second']:>10,.0f}"
            f" ticks/s   batched {entry['batched_ticks_per_second']:>10,.0f}"
            f" ticks/s   speedup {entry['speedup']:.2f}x"
        )
    lines.append(f"best speedup: {payload['best_speedup']:.2f}x")
    emit("Batched datapath — streaming throughput (smoke scale)", lines)


def test_streaming_throughput_datapoint():
    payload = measure()
    _emit(payload)
    _append("BENCH_datapath.json", payload)
    assert payload["best_speedup"] >= MIN_BEST_SPEEDUP, (
        "batched datapath no longer pays for itself on streaming "
        f"scenarios: best speedup {payload['best_speedup']:.2f}x "
        f"< {MIN_BEST_SPEEDUP}x"
    )


def main(argv: list[str]) -> int:
    out_path = argv[1] if len(argv) > 1 else "BENCH_datapath.json"
    payload = measure()
    _append(out_path, payload)
    print(json.dumps(payload, indent=2))
    if payload["best_speedup"] < MIN_BEST_SPEEDUP:
        print(f"FATAL: best speedup below {MIN_BEST_SPEEDUP}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
