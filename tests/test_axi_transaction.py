"""Unit + property tests for burst address math and fragmentation rules."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.axi import (
    ARBeat,
    AWBeat,
    AtomicOp,
    BurstType,
    beat_addresses,
    bytes_per_beat,
    crosses_4k,
    fragment_burst,
    fragment_count,
    is_fragmentable,
)


# ----------------------------------------------------------------------
# beat_addresses
# ----------------------------------------------------------------------
def test_incr_addresses():
    ar = ARBeat(id=0, addr=0x1000, beats=4, size=3)
    assert beat_addresses(ar) == [0x1000, 0x1008, 0x1010, 0x1018]


def test_incr_unaligned_first_beat():
    # First beat keeps the unaligned address; later beats are aligned.
    ar = ARBeat(id=0, addr=0x1004, beats=3, size=3)
    assert beat_addresses(ar) == [0x1004, 0x1008, 0x1010]


def test_fixed_addresses_repeat():
    aw = AWBeat(id=0, addr=0x80, beats=4, size=2, burst=BurstType.FIXED)
    assert beat_addresses(aw) == [0x80] * 4


def test_wrap_addresses_wrap_at_container():
    # 4 beats x 8 B = 32 B container; start mid-container.
    ar = ARBeat(id=0, addr=0x110, beats=4, size=3, burst=BurstType.WRAP)
    assert beat_addresses(ar) == [0x110, 0x118, 0x100, 0x108]


def test_wrap_addresses_from_container_start():
    ar = ARBeat(id=0, addr=0x100, beats=2, size=3, burst=BurstType.WRAP)
    assert beat_addresses(ar) == [0x100, 0x108]


# ----------------------------------------------------------------------
# 4K boundary
# ----------------------------------------------------------------------
def test_crosses_4k_detects_crossing():
    ar = ARBeat(id=0, addr=0xFF8, beats=2, size=3)
    assert crosses_4k(ar)


def test_crosses_4k_ok_inside_page():
    ar = ARBeat(id=0, addr=0xF00, beats=32, size=3)
    assert not crosses_4k(ar)


def test_crosses_4k_never_for_fixed_or_wrap():
    assert not crosses_4k(
        ARBeat(id=0, addr=0xFFC, beats=4, size=2, burst=BurstType.FIXED)
    )
    assert not crosses_4k(
        ARBeat(id=0, addr=0xFF0, beats=4, size=2, burst=BurstType.WRAP)
    )


# ----------------------------------------------------------------------
# fragmentation rules (paper Section III-A)
# ----------------------------------------------------------------------
def test_atomic_never_fragmentable():
    aw = AWBeat(id=0, addr=0, beats=64, size=3, atop=AtomicOp.SWAP)
    assert not is_fragmentable(aw)


def test_non_modifiable_short_not_fragmentable():
    ar = ARBeat(id=0, addr=0, beats=16, size=3, modifiable=False)
    assert not is_fragmentable(ar)


def test_non_modifiable_long_is_fragmentable():
    ar = ARBeat(id=0, addr=0, beats=17, size=3, modifiable=False)
    assert is_fragmentable(ar)


def test_fixed_and_wrap_not_fragmentable():
    assert not is_fragmentable(
        AWBeat(id=0, addr=0, beats=8, size=3, burst=BurstType.FIXED)
    )
    assert not is_fragmentable(
        AWBeat(id=0, addr=0, beats=8, size=3, burst=BurstType.WRAP)
    )


def test_single_beat_not_fragmentable():
    assert not is_fragmentable(ARBeat(id=0, addr=0, beats=1, size=3))


def test_modifiable_incr_is_fragmentable():
    assert is_fragmentable(ARBeat(id=0, addr=0, beats=2, size=3))


# ----------------------------------------------------------------------
# fragment_burst
# ----------------------------------------------------------------------
def test_fragment_exact_division():
    ar = ARBeat(id=0, addr=0x1000, beats=256, size=3)
    frags = fragment_burst(ar, 64)
    assert len(frags) == 4
    assert [f.addr for f in frags] == [0x1000, 0x1200, 0x1400, 0x1600]
    assert all(f.beats == 64 for f in frags)


def test_fragment_remainder_on_last():
    ar = ARBeat(id=0, addr=0, beats=10, size=3)
    frags = fragment_burst(ar, 4)
    assert [f.beats for f in frags] == [4, 4, 2]


def test_fragment_granularity_one():
    ar = ARBeat(id=0, addr=0x100, beats=4, size=3)
    frags = fragment_burst(ar, 1)
    assert len(frags) == 4
    assert [f.addr for f in frags] == [0x100, 0x108, 0x110, 0x118]


def test_fragment_nonfragmentable_passes_through():
    aw = AWBeat(id=0, addr=0, beats=8, size=3, atop=AtomicOp.STORE)
    frags = fragment_burst(aw, 1)
    assert len(frags) == 1
    assert frags[0].beats == 8


def test_fragment_larger_granularity_passes_through():
    ar = ARBeat(id=0, addr=0, beats=16, size=3)
    assert len(fragment_burst(ar, 256)) == 1


def test_fragment_invalid_granularity():
    ar = ARBeat(id=0, addr=0, beats=16, size=3)
    with pytest.raises(ValueError):
        fragment_burst(ar, 0)
    with pytest.raises(ValueError):
        fragment_count(16, -1)


def test_fragment_count_matches():
    assert fragment_count(256, 64) == 4
    assert fragment_count(10, 4) == 3
    assert fragment_count(1, 1) == 1


# ----------------------------------------------------------------------
# properties
# ----------------------------------------------------------------------
sizes = st.integers(min_value=0, max_value=4)
beat_counts = st.integers(min_value=1, max_value=256)
grans = st.integers(min_value=1, max_value=256)


@settings(max_examples=200, deadline=None)
@given(
    addr=st.integers(min_value=0, max_value=2**32 - 1),
    beats=beat_counts,
    size=sizes,
    gran=grans,
)
def test_property_fragments_cover_burst_exactly(addr, beats, size, gran):
    """Fragments preserve total beat count and cover the same addresses."""
    nbytes = bytes_per_beat(size)
    addr &= ~(nbytes - 1)  # aligned burst for exact address comparison
    ar = ARBeat(id=0, addr=addr, beats=beats, size=size)
    frags = fragment_burst(ar, gran)
    assert sum(f.beats for f in frags) == beats
    # Addresses of fragment beats must equal the original burst's beats.
    orig = beat_addresses(ar)
    frag_addrs = []
    for f in frags:
        frag_addrs.extend(
            beat_addresses(ARBeat(id=0, addr=f.addr, beats=f.beats, size=size))
        )
    assert frag_addrs == orig


@settings(max_examples=200, deadline=None)
@given(beats=beat_counts, gran=grans)
def test_property_fragment_sizes_bounded(beats, gran):
    ar = ARBeat(id=0, addr=0, beats=beats, size=3)
    for f in fragment_burst(ar, gran):
        assert 1 <= f.beats <= max(gran, 1) or not is_fragmentable(ar)


@settings(max_examples=100, deadline=None)
@given(
    addr=st.integers(min_value=0, max_value=2**20 - 1),
    beats=st.integers(min_value=2, max_value=16).map(lambda b: 1 << (b % 4 + 1)),
    size=sizes,
)
def test_property_wrap_addresses_stay_in_container(addr, beats, size):
    nbytes = bytes_per_beat(size)
    addr &= ~(nbytes - 1)
    container = beats * nbytes
    ar = ARBeat(id=0, addr=addr, beats=beats, size=size, burst=BurstType.WRAP)
    base = (addr // container) * container
    for a in beat_addresses(ar):
        assert base <= a < base + container
