"""Tests for the baseline regulators (ABU, ABE, C&F) and their gaps
relative to AXI-REALM."""

import pytest

from repro.axi import AxiBundle, Resp
from repro.baselines import AbeEqualizer, AbuRegulator, CutForwardUnit
from repro.mem import SramMemory
from repro.sim import Simulator
from repro.traffic import StallingWriter
from repro.traffic.driver import ManagerDriver


def make_with_regulator(factory):
    """driver -> regulator -> SRAM."""
    sim = Simulator()
    up = AxiBundle(sim, "up")
    down = AxiBundle(sim, "down")
    reg = sim.add(factory(up, down))
    sram = sim.add(SramMemory(down, base=0, size=0x10000))
    drv = sim.add(ManagerDriver(up))
    return sim, reg, sram, drv


def finish(sim, drv, max_cycles=50_000):
    sim.run_until(lambda: drv.idle, max_cycles=max_cycles, what="driver")


# ----------------------------------------------------------------------
# ABU
# ----------------------------------------------------------------------
def test_abu_passes_data_through():
    sim, abu, sram, drv = make_with_regulator(
        lambda u, d: AbuRegulator(u, d, budget_bytes=1 << 30,
                                  period_cycles=1 << 30)
    )
    drv.write(0x100, bytes(range(8)))
    op = drv.read(0x100)
    finish(sim, drv)
    assert op.rdata == bytes(range(8))


def test_abu_budget_blocks_until_period():
    sim, abu, sram, drv = make_with_regulator(
        lambda u, d: AbuRegulator(u, d, budget_bytes=16, period_cycles=300)
    )
    a = drv.read(0x0)  # 8 B
    b = drv.read(0x8)  # 8 B -> budget gone
    c = drv.read(0x10)  # must wait for replenish
    finish(sim, drv)
    assert max(a.done_cycle, b.done_cycle) < 300
    assert c.done_cycle >= 300
    assert abu.denied > 0


def test_abu_does_not_split_bursts():
    sim, abu, sram, drv = make_with_regulator(
        lambda u, d: AbuRegulator(u, d, budget_bytes=1 << 30,
                                  period_cycles=1 << 30)
    )
    drv.read(0x0, beats=64)
    finish(sim, drv)
    assert sram.reads_served == 1  # whole burst reached the memory


def test_abu_vulnerable_to_stall_dos():
    """ABU has no write buffer: the stalling attack still works."""
    sim = Simulator()
    up = AxiBundle(sim, "up")
    down = AxiBundle(sim, "down")
    sim.add(AbuRegulator(up, down, budget_bytes=1 << 30, period_cycles=1 << 30))
    sram = sim.add(SramMemory(down, base=0, size=0x1000))
    sim.add(StallingWriter(up, beats=16))
    sim.run(1000)
    assert sram.writes_served == 0  # memory is stuck: DoS succeeded


# ----------------------------------------------------------------------
# ABE
# ----------------------------------------------------------------------
def test_abe_splits_to_nominal_burst():
    sim, abe, sram, drv = make_with_regulator(
        lambda u, d: AbeEqualizer(u, d, nominal_burst=4, max_outstanding=8)
    )
    op = drv.read(0x0, beats=16)
    finish(sim, drv)
    assert op.done
    assert sram.reads_served == 4  # 16 beats -> 4 fragments


def test_abe_data_integrity():
    sim, abe, sram, drv = make_with_regulator(
        lambda u, d: AbeEqualizer(u, d, nominal_burst=2, max_outstanding=4)
    )
    payload = bytes(i & 0xFF for i in range(64))
    drv.write(0x200, payload, beats=8)
    op = drv.read(0x200, beats=8)
    finish(sim, drv)
    assert op.rdata == payload


def test_abe_caps_outstanding():
    sim, abe, sram, drv = make_with_regulator(
        lambda u, d: AbeEqualizer(u, d, nominal_burst=1, max_outstanding=2)
    )
    drv.read(0x0, beats=8)
    finish(sim, drv)
    assert abe.denied > 0  # 8 fragments pushed against a cap of 2


def test_abe_no_budget_hog_unregulated():
    """ABE equalises but cannot limit total bandwidth."""
    sim, abe, sram, drv = make_with_regulator(
        lambda u, d: AbeEqualizer(u, d, nominal_burst=1, max_outstanding=8)
    )
    for i in range(20):
        drv.read(i * 8)
    finish(sim, drv)
    assert len(drv.completed) == 20  # nothing ever blocked on a budget


def test_abe_validates():
    sim = Simulator()
    with pytest.raises(ValueError):
        AbeEqualizer(AxiBundle(sim, "u"), AxiBundle(sim, "d"),
                     max_outstanding=0)


# ----------------------------------------------------------------------
# Cut & Forward
# ----------------------------------------------------------------------
def test_cnf_defeats_stall_dos():
    sim = Simulator()
    up = AxiBundle(sim, "up")
    down = AxiBundle(sim, "down")
    sim.add(CutForwardUnit(up, down, depth_beats=32))
    sram = sim.add(SramMemory(down, base=0, size=0x1000))
    sim.add(StallingWriter(up, beats=16))
    victim_port = down  # downstream stays usable: nothing was forwarded
    sim.run(1000)
    assert sram.writes_served == 0
    assert down.aw.occupancy == 0  # the poisoned AW never left the unit


def test_cnf_forwards_complete_writes():
    sim, cnf, sram, drv = make_with_regulator(
        lambda u, d: CutForwardUnit(u, d, depth_beats=32)
    )
    drv.write(0x40, bytes(range(32)), beats=4)
    op = drv.read(0x40, beats=4)
    finish(sim, drv)
    assert op.rdata == bytes(range(32))


def test_cnf_reads_unaffected():
    sim, cnf, sram, drv = make_with_regulator(
        lambda u, d: CutForwardUnit(u, d)
    )
    op = drv.read(0x0, beats=8)
    finish(sim, drv)
    assert op.done
    assert sram.reads_served == 1
