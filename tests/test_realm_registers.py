"""Tests for the configuration register file and the bus guard."""

import pytest

from repro.realm import (
    BusGuard,
    BusGuardError,
    NO_OWNER,
    RealmRegisterFile,
    RegisterError,
    RegionConfig,
)
from repro.realm import register_file as rf

from helpers import build_realm_system


HWROT_TID = 0x10
CVA6_TID = 0x20
EVIL_TID = 0x66


def make_regfile(sim):
    drv, realm, sram = build_realm_system(sim)
    regfile = RealmRegisterFile([realm])
    return drv, realm, regfile


# ----------------------------------------------------------------------
# bus guard
# ----------------------------------------------------------------------
def test_unclaimed_space_rejects_everything(sim):
    _, _, regfile = make_regfile(sim)
    with pytest.raises(BusGuardError, match="unclaimed"):
        regfile.read(rf.unit_base(0) + rf.CTRL, tid=CVA6_TID)
    with pytest.raises(BusGuardError):
        regfile.write(rf.unit_base(0) + rf.GRANULARITY, 4, tid=CVA6_TID)


def test_guard_register_claims_ownership(sim):
    _, _, regfile = make_regfile(sim)
    assert regfile.read(0x0, tid=CVA6_TID) == NO_OWNER
    regfile.write(0x0, CVA6_TID, tid=CVA6_TID)
    assert regfile.guard.owner == CVA6_TID
    # Now the owner can access config registers.
    value = regfile.read(rf.unit_base(0) + rf.CTRL, tid=CVA6_TID)
    assert value & rf.CTRL_REGULATION_EN


def test_non_owner_rejected_after_claim(sim):
    _, _, regfile = make_regfile(sim)
    regfile.write(0x0, HWROT_TID, tid=HWROT_TID)
    with pytest.raises(BusGuardError, match="not the owner"):
        regfile.read(rf.unit_base(0) + rf.CTRL, tid=EVIL_TID)
    assert regfile.guard.rejected_accesses >= 1


def test_handover_transfers_ownership(sim):
    _, _, regfile = make_regfile(sim)
    regfile.write(0x0, HWROT_TID, tid=HWROT_TID)  # HWRoT claims at boot
    regfile.write(0x0, CVA6_TID, tid=HWROT_TID)  # hands over to CVA6
    assert regfile.guard.owner == CVA6_TID
    assert regfile.guard.handovers == 1
    regfile.read(rf.unit_base(0) + rf.STATUS, tid=CVA6_TID)
    with pytest.raises(BusGuardError):
        regfile.read(rf.unit_base(0) + rf.STATUS, tid=HWROT_TID)


def test_non_owner_cannot_hand_over(sim):
    _, _, regfile = make_regfile(sim)
    regfile.write(0x0, HWROT_TID, tid=HWROT_TID)
    with pytest.raises(BusGuardError):
        regfile.write(0x0, EVIL_TID, tid=EVIL_TID)


def test_guard_reset(sim):
    guard = BusGuard()
    guard.write_guard(5, 5)
    guard.reset()
    assert not guard.claimed


# ----------------------------------------------------------------------
# register map
# ----------------------------------------------------------------------
def claimed_regfile(sim):
    drv, realm, regfile = make_regfile(sim)
    regfile.write(0x0, CVA6_TID, tid=CVA6_TID)
    return drv, realm, regfile


def test_ctrl_register_roundtrip(sim):
    _, realm, regfile = claimed_regfile(sim)
    addr = rf.unit_base(0) + rf.CTRL
    regfile.write(addr, rf.CTRL_REGULATION_EN | rf.CTRL_THROTTLE_EN, tid=CVA6_TID)
    value = regfile.read(addr, tid=CVA6_TID)
    assert value & rf.CTRL_THROTTLE_EN
    assert realm.config.throttle_enabled


def test_granularity_write_goes_through_reconfig(sim):
    _, realm, regfile = claimed_regfile(sim)
    regfile.write(rf.unit_base(0) + rf.GRANULARITY, 4, tid=CVA6_TID)
    sim.run(10)  # drain + apply
    assert regfile.read(rf.unit_base(0) + rf.GRANULARITY, tid=CVA6_TID) == 4


def test_status_register_read_only(sim):
    _, realm, regfile = claimed_regfile(sim)
    with pytest.raises(RegisterError, match="read-only"):
        regfile.write(rf.unit_base(0) + rf.STATUS, 1, tid=CVA6_TID)


def test_region_config_via_registers(sim):
    _, realm, regfile = claimed_regfile(sim)
    base = rf.unit_base(0) + rf.region_base(0)
    regfile.write(base + rf.REGION_BASE, 0x0, tid=CVA6_TID)
    regfile.write(base + rf.REGION_SIZE, 0x10000, tid=CVA6_TID)
    regfile.write(base + rf.BUDGET, 4096, tid=CVA6_TID)
    regfile.write(base + rf.PERIOD, 1000, tid=CVA6_TID)
    sim.run(10)
    assert regfile.read(base + rf.REGION_SIZE, tid=CVA6_TID) == 0x10000
    assert regfile.read(base + rf.BUDGET, tid=CVA6_TID) == 4096
    assert regfile.read(base + rf.PERIOD, tid=CVA6_TID) == 1000


def test_statistics_registers_update(sim):
    drv, realm, regfile = claimed_regfile(sim)
    base = rf.unit_base(0) + rf.region_base(0)
    regfile.write(base + rf.REGION_BASE, 0x0, tid=CVA6_TID)
    regfile.write(base + rf.REGION_SIZE, 0x10000, tid=CVA6_TID)
    sim.run(10)
    drv.read(0x0, beats=4)
    sim.run_until(lambda: drv.idle, max_cycles=1000, what="driver")
    sim.run(5)
    assert regfile.read(base + rf.STAT_TOTAL_BYTES, tid=CVA6_TID) == 32
    assert regfile.read(base + rf.STAT_TXN_COUNT, tid=CVA6_TID) == 1
    assert regfile.read(base + rf.STAT_LATENCY_MAX, tid=CVA6_TID) > 0
    assert regfile.read(base + rf.STAT_BANDWIDTH_MILLI, tid=CVA6_TID) >= 0


def test_unmapped_offsets_raise(sim):
    _, realm, regfile = claimed_regfile(sim)
    with pytest.raises(RegisterError):
        regfile.read(rf.unit_base(5) + rf.CTRL, tid=CVA6_TID)  # no unit 5
    with pytest.raises(RegisterError):
        regfile.read(rf.unit_base(0) + 0x999, tid=CVA6_TID)


def test_regfile_needs_units():
    with pytest.raises(ValueError):
        RealmRegisterFile([])


def test_outstanding_register(sim):
    drv, realm, regfile = claimed_regfile(sim)
    assert regfile.read(rf.unit_base(0) + rf.OUTSTANDING, tid=CVA6_TID) == 0


# ----------------------------------------------------------------------
# error paths: offsets, guard rejections, knob-path equivalence
# ----------------------------------------------------------------------
def test_out_of_range_unit_offsets(sim):
    _, realm, regfile = claimed_regfile(sim)
    # Offsets below the first unit block (but not the guard register).
    with pytest.raises(RegisterError, match="maps to no unit"):
        regfile.read(0x8, tid=CVA6_TID)
    with pytest.raises(RegisterError, match="maps to no unit"):
        regfile.write(0x8, 1, tid=CVA6_TID)
    # One past the last mapped unit.
    beyond = rf.unit_base(len(regfile.units))
    with pytest.raises(RegisterError, match="maps to no unit"):
        regfile.read(beyond + rf.CTRL, tid=CVA6_TID)


def test_out_of_range_region_offsets(sim):
    _, realm, regfile = claimed_regfile(sim)
    beyond = rf.unit_base(0) + rf.region_base(realm.params.n_regions)
    with pytest.raises(RegisterError, match="maps to no region"):
        regfile.read(beyond + rf.BUDGET, tid=CVA6_TID)
    with pytest.raises(RegisterError, match="maps to no region"):
        regfile.write(beyond + rf.BUDGET, 1, tid=CVA6_TID)
    # A hole between the unit registers and the first region block.
    with pytest.raises(RegisterError):
        regfile.read(rf.unit_base(0) + 0x20, tid=CVA6_TID)


def test_statistics_registers_are_read_only(sim):
    _, realm, regfile = claimed_regfile(sim)
    base = rf.unit_base(0) + rf.region_base(0)
    for stat in (rf.STAT_BYTES_PERIOD, rf.STAT_TOTAL_BYTES,
                 rf.STAT_TXN_COUNT, rf.STAT_LATENCY_MAX,
                 rf.STAT_STALL_CYCLES, rf.STAT_BANDWIDTH_MILLI):
        with pytest.raises(RegisterError, match="read-only|unmapped"):
            regfile.write(base + stat, 1, tid=CVA6_TID)
    with pytest.raises(RegisterError, match="read-only"):
        regfile.write(rf.unit_base(0) + rf.OUTSTANDING, 1, tid=CVA6_TID)


def test_guard_rejections_do_not_touch_register_state(sim):
    _, realm, regfile = claimed_regfile(sim)
    budget = rf.unit_base(0) + rf.region_base(0) + rf.BUDGET
    regfile.write(budget, 4096, tid=CVA6_TID)
    rejected = regfile.guard.rejected_accesses
    with pytest.raises(BusGuardError):
        regfile.write(budget, 1, tid=EVIL_TID)
    assert regfile.guard.rejected_accesses == rejected + 1
    assert regfile.read(budget, tid=CVA6_TID) == 4096


def test_knob_path_writes_match_raw_register_writes():
    """The control plane's knob route and a raw guarded write must land
    on the same register state, bit for bit."""
    from repro.sim import Simulator
    from repro.system import SystemBuilder

    def build():
        return (
            SystemBuilder(Simulator())
            .add_manager("mgr", protect=True)
            .add_manager("other")
            .add_sram("mem", base=0x0, size=0x10000)
            .build()
        )

    knob_side, raw_side = build(), build()
    writes = [
        (rf.region_base(0) + rf.BUDGET, "realm.mgr.region0.budget_bytes",
         2048),
        (rf.region_base(0) + rf.PERIOD, "realm.mgr.region0.period_cycles",
         750),
        (rf.region_base(0) + rf.REGION_SIZE, "realm.mgr.region0.size",
         0x8000),
        (rf.GRANULARITY, "realm.mgr.granularity", 16),
    ]
    raw_side.regfile.write(0x0, CVA6_TID, tid=CVA6_TID)
    for offset, path, value in writes:
        knob_side.control.set(path, value)
        raw_side.regfile.write(rf.unit_base(0) + offset, value, tid=CVA6_TID)
    knob_side.sim.run(20)  # intrusive writes drain + apply
    raw_side.sim.run(20)
    for offset, path, value in writes:
        raw = raw_side.regfile._read(rf.unit_base(0) + offset)
        via_knob = knob_side.regfile._read(rf.unit_base(0) + offset)
        assert via_knob == raw == value
        assert knob_side.control.get(path) == value
