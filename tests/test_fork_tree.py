"""Fork-tree campaign execution: grouped and hierarchical prefix
sharing (DESIGN.md section 14).

Planner units pin down the tree shapes — a single settable axis reduces
to the flat PR 5 plan, two settable axes nest into a two-level tree,
a mixed settable/non-settable sweep splits into scratch groups that
each still snapshot — and that the shape is canonical (independent of
sweep-axis file order).  Execution tests assert the contract that makes
``--fork`` safe to flip on blindly: reports byte-identical to scratch
runs on every kernel/datapath combination, sequentially and over the
process pool, including under randomized multi-axis sweeps.
"""

from __future__ import annotations

import copy
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.scenario import (
    apply_smoke,
    expand,
    load_file,
    plan_fork,
    plan_fork_tree,
    run_campaign,
)
from repro.scenario.spec import validate

SCENARIO_DIR = Path(__file__).resolve().parent.parent / "scenarios"

BUDGET_FIELD = "schedule.cut.set.realm.dma.region0.budget_bytes"
TRIM_FIELD = "schedule.trim.set.realm.core.region0.budget_bytes"
BURST_FIELD = "traffic.dma.burst_beats"


def _tree(horizon=1_200, cut_at=400):
    """A horizon-bounded two-manager scenario whose ``cut`` rule writes
    the DMA budget at *cut_at* — the settable divergence under test."""
    return {
        "scenario": {"name": "forktree", "seed": 17},
        "run": {"horizon": horizon},
        "topology": {
            "managers": [
                {
                    "name": "core",
                    "protect": True,
                    "granularity": 16,
                    "regions": [
                        {"base": 0x0, "size": 0x1_0000,
                         "budget_bytes": "unlimited",
                         "period_cycles": "unlimited"},
                    ],
                },
                {
                    "name": "dma",
                    "protect": True,
                    "granularity": 64,
                    "regions": [
                        {"base": 0x0, "size": 0x1_0000,
                         "budget_bytes": "unlimited",
                         "period_cycles": "unlimited"},
                    ],
                },
            ],
            "memories": [
                {"name": "mem", "kind": "sram", "base": 0x0,
                 "size": 0x1_0000},
            ],
        },
        "traffic": {
            "core": {"kind": "core", "pattern": "susan", "n_accesses": 60,
                     "base": 0x0, "footprint": 0x2000, "gap_mean": 2,
                     "beats": 2, "seed": 21},
            "dma": {"kind": "dma", "src_base": 0x0, "src_size": 0x4000,
                    "dst_base": 0x8000, "dst_size": 0x4000,
                    "burst_beats": 128},
        },
        "schedule": [
            {
                "label": "cut",
                "at": cut_at,
                "set": {"realm.dma.region0.budget_bytes": 4096,
                        "realm.dma.region0.period_cycles": 500},
            },
        ],
        "campaign": {
            "sweep": [
                {"field": BUDGET_FIELD, "values": [256, 2048, 1 << 40]},
            ],
        },
    }


def _with_trim_axis(tree, trim_at=800, values=(512, 1 << 40)):
    """Add a second settable axis on a rule firing at *trim_at*."""
    tree["schedule"].append({
        "label": "trim",
        "at": trim_at,
        "set": {"realm.core.region0.budget_bytes": 8192},
    })
    tree["campaign"]["sweep"].append(
        {"field": TRIM_FIELD, "values": list(values)}
    )
    return tree


def _with_burst_axis(tree, values=(32, 128)):
    """Add a non-settable axis (diverges from cycle 0)."""
    tree["campaign"]["sweep"].append(
        {"field": BURST_FIELD, "values": list(values)}
    )
    return tree


def _plan(tree):
    return plan_fork_tree(expand(validate(tree)))


def _shape(node):
    """Order-insensitive structural fingerprint of a fork (sub)tree."""
    return (node.cycle, len(node.points),
            tuple(sorted((_shape(c) for c in node.children), key=repr)))


# ----------------------------------------------------------------------
# planner: tree shapes
# ----------------------------------------------------------------------
def test_single_settable_axis_reduces_to_flat_plan():
    points = expand(validate(_tree()))
    flat = plan_fork(points)
    tree = plan_fork_tree(points)
    assert flat is not None
    assert tree.shares_prefix and tree.snapshot_nodes == 1
    assert tree.root.cycle == flat.fork_cycle == 400
    assert all(child.is_leaf for child in tree.root.children)
    assert len(tree.root.children) == len(points)
    assert tree.root.divergent == flat.divergent
    assert tree.labels == tuple(p.label for p in points)


def test_two_settable_axes_build_two_level_tree():
    tree = _plan(_with_trim_axis(_tree()))
    root = tree.root
    assert root.cycle == 400
    assert len(root.children) == 3  # one per budget value
    for child in root.children:
        assert child.cycle == 800
        assert len(child.children) == 2  # one leaf per trim value
        assert all(grandchild.is_leaf for grandchild in child.children)
    assert tree.snapshot_nodes == 4
    # Root edge of 400 once (not 6 times), three 400-cycle second-level
    # edges once each (not twice each).
    assert tree.predicted() == {
        "prefix_cycles": 400 + 3 * 400,
        "saved_cycles": 400 * 5 + 3 * 400 * 1,
    }


def test_mixed_axes_split_into_groups_that_still_snapshot():
    tree = _plan(_with_burst_axis(_tree()))
    root = tree.root
    assert root.cycle is None  # structural: bursts diverge from cycle 0
    assert root.fallback == (BURST_FIELD,)
    assert len(root.children) == 2  # one group per burst value
    for group in root.children:
        assert group.cycle == 400  # each group still forks on budget
        assert len(group.points) == 3
        assert all(leaf.is_leaf for leaf in group.children)
    assert tree.shares_prefix and tree.snapshot_nodes == 2
    described = tree.describe()
    assert described["points"] == 6
    assert described["snapshot_nodes"] == 2
    assert described["fallbacks"] == [
        {"points": 6, "groups": 2, "paths": [BURST_FIELD]}
    ]
    assert described["prefix_cycles"] == 800
    assert described["saved_cycles"] == 2 * 400 * 2


def test_tree_shape_is_independent_of_axis_order():
    forward = _with_burst_axis(_with_trim_axis(_tree()))
    reversed_axes = copy.deepcopy(forward)
    reversed_axes["campaign"]["sweep"].reverse()
    assert _shape(_plan(forward).root) == _shape(_plan(reversed_axes).root)
    # Expansion order (labels, seeds) still follows the file's axis
    # order — only the tree's internal layering is canonical.
    assert [p.label for p in expand(validate(forward))] != \
        [p.label for p in expand(validate(reversed_axes))]


def test_identical_points_share_nothing():
    tree = _tree()
    tree["campaign"] = {"points": [{"label": "a"}, {"label": "b"}]}
    plan = _plan(tree)
    assert not plan.shares_prefix
    assert plan.root.cycle is None
    assert all(child.is_leaf for child in plan.root.children)


def test_event_triggered_divergence_stays_scratch():
    tree = _tree()
    tree["schedule"][0] = {
        "label": "cut",
        "when": "realm.dma.region0.total_bytes >= 1",
        "set": {"realm.dma.region0.budget_bytes": 4096},
    }
    tree["campaign"] = {"sweep": [
        {"field": "schedule.cut.set.realm.dma.region0.budget_bytes",
         "values": [256, 1 << 40]},
    ]}
    plan = _plan(tree)
    assert not plan.shares_prefix


# ----------------------------------------------------------------------
# execution: byte-identity with scratch
# ----------------------------------------------------------------------
def test_grouped_tree_matches_scratch_on_all_kernel_combos():
    spec = validate(_with_burst_axis(_tree()))
    reference = run_campaign(spec)
    for active_set in (True, False):
        for batched in (True, False):
            forked = run_campaign(
                spec, fork=True, active_set=active_set, batched=batched
            )
            assert forked.digest() == reference.digest(), (
                f"fork-tree drifted with active_set={active_set} "
                f"batched={batched}"
            )
    forked = run_campaign(spec, fork=True)
    assert forked.fork_cycle is None  # grouped: no whole-sweep prefix
    assert forked.to_json_dict() == reference.to_json_dict()
    # Executed amortization matches the plan (horizon > fork cycle).
    assert forked.fork_stats["executed"] == {
        "prefix_cycles": 800, "saved_cycles": 1600,
    }
    assert forked.fork_stats["planned"]["snapshot_nodes"] == 2


def test_two_level_tree_matches_scratch():
    spec = validate(_with_trim_axis(_tree()))
    reference = run_campaign(spec)
    forked = run_campaign(spec, fork=True)
    assert forked.fork_cycle == 400  # whole sweep shares the root edge
    assert forked.to_json_dict() == reference.to_json_dict()
    assert forked.fork_stats["executed"] == {
        "prefix_cycles": 1600, "saved_cycles": 3200,
    }


def test_fork_tree_over_process_pool_matches_sequential():
    spec = validate(_with_burst_axis(_with_trim_axis(_tree())))
    sequential = run_campaign(spec, fork=True)
    pooled = run_campaign(spec, fork=True, jobs=2)
    assert pooled.to_json_dict() == sequential.to_json_dict()
    assert pooled.fork_stats == sequential.fork_stats


# ----------------------------------------------------------------------
# property: fork-tree == scratch over randomized multi-axis sweeps
# ----------------------------------------------------------------------
@st.composite
def sweep_campaigns(draw):
    tree = _tree(horizon=900, cut_at=draw(st.sampled_from([200, 400])))
    tree["campaign"]["sweep"] = [{
        "field": BUDGET_FIELD,
        "values": draw(st.sampled_from(
            [[256, 1 << 40], [512, 4096], [256, 2048, 1 << 40]]
        )),
    }]
    if draw(st.booleans()):
        _with_trim_axis(tree, trim_at=draw(st.sampled_from([300, 700])))
    if draw(st.booleans()):
        _with_burst_axis(tree, values=draw(st.sampled_from(
            [[32, 128], [128, 32], [64]]
        )))
    if draw(st.booleans()):
        tree["campaign"]["sweep"].reverse()
    return tree


@given(sweep_campaigns())
@settings(max_examples=8, deadline=None)
def test_fork_tree_matches_scratch_property(tree):
    spec = validate(tree)
    scratch = run_campaign(spec)
    forked = run_campaign(spec, fork=True)
    assert forked.to_json_dict() == scratch.to_json_dict()


# ----------------------------------------------------------------------
# CLI: plan subcommand + fork-stats emission
# ----------------------------------------------------------------------
def test_plan_command_prints_tree_without_running(capsys):
    assert main(["plan", str(SCENARIO_DIR / "budget_grid.toml"),
                 "--smoke"]) == 0
    out = capsys.readouterr().out
    assert "4 points, 2 snapshot node(s)" in out
    assert "schedule-settable (forks below a snapshot)" in out
    assert "splits groups at cycle 0" in out
    assert "snapshot @cycle 2000" in out
    assert "predicted with --fork" in out


def test_plan_command_reports_unshareable_sweeps(capsys):
    assert main(["plan", str(SCENARIO_DIR / "fig6a.toml"),
                 "--smoke"]) == 0
    out = capsys.readouterr().out
    assert "no provable shared prefix" in out


def test_run_fork_emits_tree_stats(capsys):
    assert main(["run", str(SCENARIO_DIR / "budget_grid.toml"),
                 "--smoke", "--fork"]) == 0
    out = capsys.readouterr().out
    assert "fork-tree execution: 2 snapshot node(s) over 4 points" in out
    assert "scratch split into 2 group(s)" in out


def test_budget_grid_fork_matches_scratch():
    spec = apply_smoke(load_file(SCENARIO_DIR / "budget_grid.toml"))
    scratch = run_campaign(spec)
    forked = run_campaign(spec, fork=True)
    assert forked.to_json_dict() == scratch.to_json_dict()
