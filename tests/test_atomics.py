"""End-to-end tests for AXI atomic operations.

The paper's splitter must never fragment atomic bursts; these tests close
the functional loop: atomics execute at the memory and their read data
returns through a REALM unit intact.
"""

import pytest

from repro.axi import AtomicOp, AxiBundle, Resp
from repro.mem import SramMemory
from repro.sim import Simulator
from repro.traffic import ManagerDriver

from helpers import build_realm_system


def make():
    sim = Simulator()
    port = AxiBundle(sim, "mem")
    sram = sim.add(SramMemory(port, base=0, size=0x1000))
    drv = sim.add(ManagerDriver(port))
    return sim, sram, drv


def finish(sim, drv):
    sim.run_until(lambda: drv.idle, max_cycles=10_000, what="driver")


def word(value):
    return value.to_bytes(8, "little")


def test_atomic_store_adds():
    sim, sram, drv = make()
    drv.write(0x100, word(10))
    drv.atomic(0x100, AtomicOp.STORE, word(5))
    op = drv.read(0x100)
    finish(sim, drv)
    assert op.rdata == word(15)
    assert sram.atomics_served == 1


def test_atomic_load_returns_old_and_adds():
    sim, sram, drv = make()
    drv.write(0x100, word(100))
    op = drv.atomic(0x100, AtomicOp.LOAD, word(1))
    rd = drv.read(0x100)
    finish(sim, drv)
    assert op.rdata == word(100)  # old value returned
    assert rd.rdata == word(101)  # memory updated


def test_atomic_swap():
    sim, sram, drv = make()
    drv.write(0x100, word(0xAAAA))
    op = drv.atomic(0x100, AtomicOp.SWAP, word(0xBBBB))
    rd = drv.read(0x100)
    finish(sim, drv)
    assert op.rdata == word(0xAAAA)
    assert rd.rdata == word(0xBBBB)


def test_atomic_add_wraps():
    sim, sram, drv = make()
    drv.write(0x100, word((1 << 64) - 1))
    drv.atomic(0x100, AtomicOp.STORE, word(2))
    op = drv.read(0x100)
    finish(sim, drv)
    assert op.rdata == word(1)


def test_atomic_compare_unsupported_slverr():
    sim, sram, drv = make()
    op = drv.atomic(0x100, AtomicOp.COMPARE, word(1))
    finish(sim, drv)
    assert op.resp == Resp.SLVERR


def test_atomic_through_realm_unit_not_fragmented(sim):
    drv, realm, sram = build_realm_system(sim)
    realm.set_granularity(1)
    drv.write(0x200, word(7))
    op = drv.atomic(0x200, AtomicOp.LOAD, word(3))
    rd = drv.read(0x200)
    sim.run_until(lambda: drv.idle, max_cycles=10_000, what="driver")
    assert op.rdata == word(7)
    assert rd.rdata == word(10)
    assert realm.splitter.bursts_split == 0  # atomics pass whole


def test_atomic_api_rejects_none():
    sim, sram, drv = make()
    with pytest.raises(ValueError):
        drv.atomic(0x0, AtomicOp.NONE, word(0))
