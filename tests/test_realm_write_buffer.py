"""Tests for the write buffer: stall-DoS immunity (paper Section III-A)."""

from repro.axi import AxiBundle, AWBeat, WBeat
from repro.interconnect import AddressMap, AxiCrossbar
from repro.mem import SramMemory
from repro.realm import RealmUnit, RealmUnitParams
from repro.sim import Component, Simulator
from repro.traffic.driver import ManagerDriver


class StallingWriter(Component):
    """Sends an AW and then withholds the write data (the DoS attacker)."""

    def __init__(self, port, beats=16):
        super().__init__("staller")
        self.port = port
        self.beats = beats
        self._sent = False

    def tick(self, cycle):
        if not self._sent and self.port.aw.can_send():
            self.port.aw.send(AWBeat(id=0, addr=0x0, beats=self.beats, size=3))
            self._sent = True


class SlowWriter(Component):
    """Sends W data at a trickle (one beat every *gap* cycles)."""

    def __init__(self, port, beats=8, gap=20):
        super().__init__("slow")
        self.port = port
        self.beats = beats
        self.gap = gap
        self._sent_aw = False
        self._sent_w = 0
        self._next_at = 0
        self.done_cycle = None

    def tick(self, cycle):
        if not self._sent_aw and self.port.aw.can_send():
            self.port.aw.send(AWBeat(id=0, addr=0x0, beats=self.beats, size=3))
            self._sent_aw = True
            self._next_at = cycle + self.gap
            return
        if (
            self._sent_aw
            and self._sent_w < self.beats
            and cycle >= self._next_at
            and self.port.w.can_send()
        ):
            self._sent_w += 1
            self.port.w.send(
                WBeat(data=bytes(8), last=(self._sent_w == self.beats))
            )
            self._next_at = cycle + self.gap
        if self.port.b.can_recv():
            self.port.b.recv()
            self.done_cycle = cycle


def build_attack_system(sim, protected: bool):
    """Attacker + victim on one crossbar/SRAM; REALM on the attacker only
    when *protected*."""
    attacker_up = AxiBundle(sim, "attacker")
    victim_port = AxiBundle(sim, "victim")
    if protected:
        attacker_down = AxiBundle(sim, "attacker.down")
        realm = sim.add(
            RealmUnit(attacker_up, attacker_down, RealmUnitParams(), "realm.att")
        )
        xbar_ports = [attacker_down, victim_port]
    else:
        realm = None
        xbar_ports = [attacker_up, victim_port]
    sub = AxiBundle(sim, "s0")
    amap = AddressMap()
    amap.add_range(0x0, 0x10000, port=0)
    sim.add(AxiCrossbar(xbar_ports, [sub], amap))
    sim.add(SramMemory(sub, base=0, size=0x10000))
    victim = sim.add(ManagerDriver(victim_port, name="victim"))
    return attacker_up, victim, realm


def test_stall_dos_succeeds_without_realm():
    sim = Simulator()
    attacker_port, victim, _ = build_attack_system(sim, protected=False)
    sim.add(StallingWriter(attacker_port))
    op = victim.write(0x100, bytes(8))
    sim.run(2000)
    assert not op.done, "DoS should block the victim without REALM"


def test_write_buffer_defeats_stall_dos():
    sim = Simulator()
    attacker_port, victim, realm = build_attack_system(sim, protected=True)
    sim.add(StallingWriter(attacker_port))
    op = victim.write(0x100, bytes(8))
    sim.run(2000)
    assert op.done, "REALM write buffer must protect the victim"
    # The attacker's AW never reached the interconnect.
    assert realm.write_buffer.bursts_forwarded == 0


def test_slow_writer_data_buffered_then_forwarded():
    """A slow (non-malicious) writer is not blocked, only decoupled: its
    burst reaches the memory once fully buffered."""
    sim = Simulator()
    attacker_port, victim, realm = build_attack_system(sim, protected=True)
    slow = sim.add(SlowWriter(attacker_port, beats=8, gap=10))
    op = victim.write(0x100, bytes(8))
    sim.run(20)
    assert op.done  # victim never waited on the slow writer
    sim.run(2000)
    assert slow.done_cycle is not None  # slow burst eventually completed
    assert realm.write_buffer.bursts_forwarded == 1


def test_victim_latency_unaffected_by_attacker():
    """Victim latency with an attacker + REALM equals the no-attacker case."""
    lat = {}
    for attacker in (False, True):
        sim = Simulator()
        attacker_port, victim, realm = build_attack_system(sim, protected=True)
        if attacker:
            sim.add(StallingWriter(attacker_port))
        op = victim.write(0x100, bytes(8))
        sim.run_until(lambda: victim.idle, max_cycles=2000, what="victim")
        lat[attacker] = op.latency
    assert lat[True] == lat[False]


def test_write_buffer_peak_occupancy_bounded():
    sim = Simulator()
    attacker_port, victim, realm = build_attack_system(sim, protected=True)
    drv = sim.add(ManagerDriver(attacker_port, name="writer"))
    for i in range(4):
        drv.write(0x200 + 64 * i, bytes(64), beats=8)
    sim.run_until(lambda: drv.idle, max_cycles=5000, what="writer")
    assert realm.write_buffer.peak_occupancy <= realm.params.write_buffer_depth
    assert realm.write_buffer.bursts_forwarded == 4
