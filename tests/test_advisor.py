"""Tests for the monitoring-driven budget advisor."""

import pytest

from repro.analysis.advisor import (
    BudgetAdvisor,
    BudgetPlan,
    ManagerObservation,
)
from repro.realm import BookkeepingUnit


def observe(name, bytes_per_cycle, cycles=1000, weight=1.0):
    book = BookkeepingUnit()
    for _ in range(cycles):
        book.on_cycle(stalled=False)
    book.on_transfer(int(bytes_per_cycle * cycles), is_read=True)
    return ManagerObservation(name, book.snapshot(), weight)


def test_equal_weights_split_link_equally():
    advisor = BudgetAdvisor(link_bytes_per_cycle=8)
    plans = advisor.plan(
        [observe("core", 6.0), observe("dma", 6.0)], period_cycles=1000
    )
    assert plans[0].share == plans[1].share == 0.5
    # Both demand 6 B/c but the fair share is 4 B/c: grants are capped.
    assert plans[0].budget_bytes == plans[1].budget_bytes == 4000
    assert all(p.saturated for p in plans)


def test_weights_skew_the_split():
    advisor = BudgetAdvisor(link_bytes_per_cycle=8)
    plans = advisor.plan(
        [observe("core", 8.0, weight=4.0), observe("dma", 8.0, weight=1.0)],
        period_cycles=1000,
    )
    by_name = {p.name: p for p in plans}
    assert by_name["core"].share == pytest.approx(0.8)
    assert by_name["core"].budget_bytes > by_name["dma"].budget_bytes


def test_low_demand_manager_granted_demand_plus_headroom():
    advisor = BudgetAdvisor(link_bytes_per_cycle=8, headroom=1.25)
    plans = advisor.plan(
        [observe("core", 1.0), observe("dma", 6.0)], period_cycles=1000
    )
    core = next(p for p in plans if p.name == "core")
    # 1 B/c demand x 1000 cycles x 1.25 headroom = 1250 < fair share 4000.
    assert core.budget_bytes == 1250
    assert not core.saturated


def test_plan_to_region_config():
    plan = BudgetPlan("core", budget_bytes=2048, share=0.5, saturated=False)
    region = plan.region(base=0x1000, size=0x1000, period=500)
    assert region.budget_bytes == 2048
    assert region.period_cycles == 500
    assert region.matches(0x1800)


def test_suggest_period_respects_latency_and_fragments():
    advisor = BudgetAdvisor()
    assert advisor.suggest_period(1000, fragment_beats=1) == 1000
    # 8 fragments of 256 beats need at least 2048 cycles.
    assert advisor.suggest_period(100, fragment_beats=256) == 2048


def test_utilization():
    advisor = BudgetAdvisor(link_bytes_per_cycle=8)
    u = advisor.utilization([observe("a", 2.0), observe("b", 4.0)])
    assert u == pytest.approx(0.75)


def test_validation():
    with pytest.raises(ValueError):
        BudgetAdvisor(link_bytes_per_cycle=0)
    with pytest.raises(ValueError):
        BudgetAdvisor(headroom=0.5)
    advisor = BudgetAdvisor()
    with pytest.raises(ValueError):
        advisor.plan([observe("a", 1.0)], period_cycles=0)
    with pytest.raises(ValueError):
        advisor.plan([observe("a", 1.0, weight=0.0)], period_cycles=100)
    with pytest.raises(ValueError):
        advisor.suggest_period(0, 1)
    assert advisor.plan([], 100) == []


def test_advisor_closes_the_loop_in_system():
    """Observe an unregulated system, plan budgets, apply, verify the
    core recovers — monitoring-driven reconfiguration end to end."""
    from repro.analysis import ContentionExperiment

    exp = ContentionExperiment(n_accesses=60)
    base = exp.run_single_source()
    # Phase 1: observe under uncontrolled contention.
    system, _generators = exp.build(
        with_dma=True, fragmentation=1, core_budget=1 << 40,
        dma_budget=1 << 40, period=1000, regulation=True,
    )
    system.sim.run(3000)
    advisor = BudgetAdvisor(link_bytes_per_cycle=8)
    observations = [
        ManagerObservation("core", system.realm("core").region_snapshot(0),
                           weight=4.0),
        ManagerObservation("dma", system.realm("dma").region_snapshot(0),
                           weight=1.0),
    ]
    plans = {p.name: p for p in advisor.plan(observations, 1000)}
    assert plans["dma"].budget_bytes < 8 * 1000  # DMA actually capped
    # Phase 2: apply the plan in a fresh run.
    result = exp.run(
        fragmentation=1,
        core_budget=max(plans["core"].budget_bytes, 4000),
        dma_budget=plans["dma"].budget_bytes,
        period=1000,
        label="advised",
    )
    assert result.perf_percent > 85.0
