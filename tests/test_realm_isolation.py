"""Stage-level tests for the isolation block (driven directly)."""

import pytest

from repro.axi import ARBeat, AWBeat, AxiBundle, BBeat, RBeat, WBeat
from repro.realm import IsolationMode, IsolationStage, WireBundle
from repro.sim import Simulator


class Harness:
    """Ticks a lone isolation stage between a bundle and a wire bundle."""

    def __init__(self):
        self.sim = Simulator()
        self.up = AxiBundle(self.sim, "up")
        self.down = WireBundle("down")
        self.stage = IsolationStage(self.up, self.down)

    def cycle(self, n=1):
        for _ in range(n):
            self.stage.tick_request(self.sim.cycle)
            self.stage.tick_response(self.sim.cycle)
            # Drain request wires (downstream always ready).
            self.taken = {}
            for name in ("aw", "w", "ar"):
                wire = getattr(self.down, name)
                if wire.can_recv():
                    self.taken[name] = wire.recv()
            self.sim.step()


def test_pass_mode_forwards_and_counts():
    h = Harness()
    h.up.aw.send(AWBeat(id=0, addr=0, beats=2, size=3))
    h.up.ar.send(ARBeat(id=0, addr=0, beats=1, size=3))
    h.sim.step()
    h.cycle()
    assert h.stage.outstanding_writes == 1
    assert h.stage.outstanding_reads == 1
    assert h.stage.outstanding == 2


def test_responses_decrement_outstanding():
    h = Harness()
    h.up.ar.send(ARBeat(id=0, addr=0, beats=1, size=3))
    h.sim.step()
    h.cycle()
    h.down.r.send(RBeat(id=0, last=True))
    h.cycle()
    assert h.stage.outstanding_reads == 0
    assert h.up.r.can_recv()


def test_isolate_blocks_new_addresses():
    h = Harness()
    h.stage.request_isolate("user")
    h.up.aw.send(AWBeat(id=0, addr=0, beats=1, size=3))
    h.sim.step()
    h.cycle(3)
    assert not h.down.aw.can_recv()
    assert h.stage.blocked_aw > 0
    assert h.stage.isolated  # nothing outstanding: immediately isolated


def test_isolate_drains_before_reporting_isolated():
    h = Harness()
    h.up.ar.send(ARBeat(id=0, addr=0, beats=1, size=3))
    h.sim.step()
    h.cycle()  # AR forwarded: 1 outstanding
    h.stage.request_isolate("user")
    h.cycle()
    assert h.stage.mode == IsolationMode.DRAINING
    h.down.r.send(RBeat(id=0, last=True))
    h.cycle()
    assert h.stage.isolated


def test_w_data_of_forwarded_burst_flows_while_draining():
    h = Harness()
    h.up.aw.send(AWBeat(id=0, addr=0, beats=2, size=3))
    h.sim.step()
    h.cycle()  # AW forwarded; W burst now owed
    h.stage.request_isolate("user")
    h.up.w.send(WBeat(last=False))
    h.sim.step()
    h.cycle()
    assert "w" in h.taken  # data still flowed
    h.up.w.send(WBeat(last=True))
    h.sim.step()
    h.cycle()
    h.down.b.send(BBeat(id=0))
    h.cycle()
    assert h.stage.isolated


def test_multiple_reasons_all_must_release():
    h = Harness()
    h.stage.request_isolate("user")
    h.stage.request_isolate("budget")
    h.stage.release("user")
    assert h.stage.mode != IsolationMode.PASS
    h.stage.release("budget")
    assert h.stage.mode == IsolationMode.PASS


def test_isolation_events_counted_once_per_engagement():
    h = Harness()
    h.stage.request_isolate("a")
    h.stage.request_isolate("b")  # already engaged: no second event
    assert h.stage.isolation_events == 1
    h.stage.release("a")
    h.stage.release("b")
    h.stage.request_isolate("a")
    assert h.stage.isolation_events == 2


def test_reset_clears_state():
    h = Harness()
    h.up.ar.send(ARBeat(id=0, addr=0, beats=1, size=3))
    h.sim.step()
    h.cycle()
    h.stage.request_isolate("user")
    h.stage.reset()
    assert h.stage.mode == IsolationMode.PASS
    assert h.stage.outstanding == 0
