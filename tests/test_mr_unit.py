"""Direct tests for the monitoring & regulation stage."""

import pytest

from repro.axi import ARBeat, AWBeat, BBeat, RBeat
from repro.realm import (
    MonitorRegulationStage,
    RegionConfig,
    RegionState,
    ThrottleUnit,
    WireBundle,
)


class Harness:
    def __init__(self, regions=None, throttle=None):
        self.up = WireBundle("up")
        self.down = WireBundle("down")
        regions = regions or [
            RegionState(RegionConfig(0, 0x10000, 1 << 40, 1 << 40))
        ]
        self.mr = MonitorRegulationStage(
            self.up, self.down, regions, throttle=throttle
        )
        self.cycle = 0

    def step(self, drain=True):
        self.mr.on_cycle(self.cycle)
        self.mr.tick_request(self.cycle)
        self.mr.tick_response(self.cycle)
        if drain:
            for name in ("aw", "w", "ar"):
                wire = getattr(self.down, name)
                if wire.can_recv():
                    wire.recv()
            for name in ("b", "r"):
                wire = getattr(self.up, name)
                if wire.can_recv():
                    wire.recv()
        self.cycle += 1


def test_region_index_matches_first_region():
    h = Harness(regions=[
        RegionState(RegionConfig(0x0, 0x100, 100, 1000)),
        RegionState(RegionConfig(0x100, 0x100, 100, 1000)),
    ])
    assert h.mr.region_index(0x50) == 0
    assert h.mr.region_index(0x150) == 1
    assert h.mr.region_index(0x999) is None


def test_budget_charged_per_burst_bytes():
    h = Harness(regions=[RegionState(RegionConfig(0, 0x10000, 100, 10_000))])
    h.up.ar.send(ARBeat(id=0, addr=0, beats=4, size=3))  # 32 B
    h.step()
    assert h.mr.regions[0].remaining == 68
    snap = h.mr.region_snapshot(0)
    assert snap.read_bytes == 32


def test_depleted_region_blocks_and_counts_denials():
    h = Harness(regions=[RegionState(RegionConfig(0, 0x10000, 8, 10_000))])
    h.up.ar.send(ARBeat(id=0, addr=0, beats=1, size=3))
    h.step()
    assert h.mr.budget_exhausted
    h.up.ar.send(ARBeat(id=1, addr=0, beats=1, size=3))
    h.step()
    h.step()
    assert h.mr.denied_by_budget >= 1
    assert h.mr.stalled_this_cycle or h.mr.denied_by_budget > 0


def test_latency_recorded_on_b_and_r_last():
    h = Harness()
    h.up.aw.send(AWBeat(id=3, addr=0, beats=1, size=3))
    h.step()
    for _ in range(5):
        h.step()
    h.down.b.send(BBeat(id=3))
    h.step()
    snap = h.mr.region_snapshot(0)
    assert snap.txn_count == 1
    assert snap.latency_max >= 5
    assert h.mr.outstanding == 0


def test_read_latency_on_last_beat_only():
    h = Harness()
    h.up.ar.send(ARBeat(id=1, addr=0, beats=2, size=3))
    h.step()
    h.down.r.send(RBeat(id=1, last=False))
    h.step()
    assert h.mr.region_snapshot(0).txn_count == 0
    h.down.r.send(RBeat(id=1, last=True))
    h.step()
    assert h.mr.region_snapshot(0).txn_count == 1


def test_throttle_denies_beyond_cap():
    throttle = ThrottleUnit(max_outstanding=1, enabled=True)
    h = Harness(throttle=throttle)
    h.up.ar.send(ARBeat(id=0, addr=0, beats=1, size=3))
    h.step()
    h.up.ar.send(ARBeat(id=1, addr=0, beats=1, size=3))
    h.step()
    assert h.mr.denied_by_throttle >= 1
    assert h.mr.outstanding == 1
    h.down.r.send(RBeat(id=0, last=True))
    h.step()
    h.step()
    assert h.mr.outstanding == 1  # second AR admitted after the first


def test_regulation_disabled_admits_everything():
    h = Harness(regions=[RegionState(RegionConfig(0, 0x10000, 0, 10_000))])
    h.mr.regulation_enabled = False
    h.up.ar.send(ARBeat(id=0, addr=0, beats=1, size=3))
    h.step()
    assert h.mr.denied_by_budget == 0
    assert not h.mr.budget_exhausted


def test_unmatched_response_id_ignored():
    h = Harness()
    h.down.b.send(BBeat(id=9))  # no tracked request
    h.step()
    assert h.mr.region_snapshot(0).txn_count == 0


def test_period_rollover_resets_books():
    h = Harness(regions=[RegionState(RegionConfig(0, 0x10000, 64, 10))])
    h.up.ar.send(ARBeat(id=0, addr=0, beats=1, size=3))
    h.step()
    assert h.mr.region_snapshot(0).bytes_this_period == 8
    for _ in range(12):
        h.step()
    assert h.mr.region_snapshot(0).bytes_this_period == 0
    assert h.mr.regions[0].periods_elapsed >= 1


def test_reset_clears_everything():
    h = Harness()
    h.up.ar.send(ARBeat(id=0, addr=0, beats=1, size=3))
    h.step()
    h.mr.reset()
    assert h.mr.outstanding == 0
    assert h.mr.region_snapshot(0).total_bytes == 0
