"""Unit tests for same-cycle wires."""

import pytest

from repro.realm import Wire, WireBundle
from repro.sim import SimulationError


def test_wire_send_recv_same_cycle():
    w = Wire("w")
    assert w.can_send()
    w.send(42)
    assert not w.can_send()
    assert w.can_recv()
    assert w.peek() == 42
    assert w.recv() == 42
    assert w.can_send()


def test_wire_full_and_empty_errors():
    w = Wire("w")
    w.send(1)
    with pytest.raises(SimulationError):
        w.send(2)
    w.recv()
    with pytest.raises(SimulationError):
        w.recv()
    with pytest.raises(SimulationError):
        w.peek()


def test_wire_occupancy_and_reset():
    w = Wire("w")
    assert w.occupancy == 0
    w.send(1)
    assert w.occupancy == 1
    w.reset()
    assert w.occupancy == 0


def test_wire_bundle_has_five_channels():
    wb = WireBundle("link")
    assert len(wb.channels) == 5
    wb.aw.send("x")
    wb.reset()
    assert not wb.aw.can_recv()
