"""Unit tests for registered valid/ready channels."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Channel, Component, SimulationError, Simulator, drain


def make_channel(capacity=2):
    sim = Simulator()
    return sim, Channel(sim, "ch", capacity=capacity)


def test_send_visible_next_cycle_only():
    sim, ch = make_channel()
    ch.send("a")
    assert not ch.can_recv()
    sim.step()
    assert ch.can_recv()
    assert ch.peek() == "a"
    assert ch.recv() == "a"
    assert not ch.can_recv()


def test_fifo_order_preserved():
    sim, ch = make_channel(capacity=8)
    for i in range(5):
        ch.send(i)
    sim.step()
    assert drain(ch) == [0, 1, 2, 3, 4]


def test_can_send_respects_capacity():
    sim, ch = make_channel(capacity=2)
    ch.send(1)
    ch.send(2)
    assert not ch.can_send()
    with pytest.raises(SimulationError):
        ch.send(3)


def test_pop_does_not_free_space_same_cycle():
    # Determinism: the sender's view is the snapshot at the clock edge.
    sim, ch = make_channel(capacity=1)
    ch.send(1)
    sim.step()
    assert ch.recv() == 1
    assert not ch.can_send()  # freed space only visible after commit
    sim.step()
    assert ch.can_send()


def test_capacity_2_sustains_one_beat_per_cycle():
    """A skid-buffered channel must not halve throughput in steady state."""
    sim = Simulator()
    ch = Channel(sim, "ch", capacity=2)

    class Producer(Component):
        def __init__(self):
            super().__init__()
            self.n = 0

        def tick(self, cycle):
            if ch.can_send():
                ch.send(self.n)
                self.n += 1

    class Consumer(Component):
        def __init__(self):
            super().__init__()
            self.got = []

        def tick(self, cycle):
            if ch.can_recv():
                self.got.append(ch.recv())

    prod = sim.add(Producer())
    cons = sim.add(Consumer())
    sim.run(100)
    # one-cycle ramp-up, then one beat per cycle
    assert len(cons.got) >= 98
    assert cons.got == sorted(cons.got)


def test_throughput_independent_of_tick_order():
    """Consumer-before-producer must give the same count as the reverse."""
    counts = []
    for order in ("pc", "cp"):
        sim = Simulator()
        ch = Channel(sim, "ch", capacity=2)
        got = []

        class P(Component):
            def __init__(self):
                super().__init__()
                self.n = 0

            def tick(self, cycle):
                if ch.can_send():
                    ch.send(self.n)
                    self.n += 1

        class C(Component):
            def tick(self, cycle):
                if ch.can_recv():
                    got.append(ch.recv())

        if order == "pc":
            sim.add(P())
            sim.add(C())
        else:
            sim.add(C())
            sim.add(P())
        sim.run(50)
        counts.append(len(got))
    assert counts[0] == counts[1]


def test_peek_and_recv_on_empty_raise():
    _, ch = make_channel()
    with pytest.raises(SimulationError):
        ch.peek()
    with pytest.raises(SimulationError):
        ch.recv()


def test_occupancy_counts_pending_and_committed():
    sim, ch = make_channel(capacity=4)
    ch.send(1)
    assert ch.occupancy == 1
    sim.step()
    ch.send(2)
    assert ch.occupancy == 2


def test_stats_counters():
    sim, ch = make_channel(capacity=4)
    ch.send(1)
    ch.send(2)
    sim.step()
    ch.recv()
    assert ch.sent_total == 2
    assert ch.recv_total == 1
    assert ch.busy_cycles == 1


def test_reset_clears_everything():
    sim, ch = make_channel()
    ch.send(1)
    sim.step()
    sim.reset()
    assert not ch.can_recv()
    assert ch.occupancy == 0
    assert ch.sent_total == 0


def test_capacity_must_be_positive():
    sim = Simulator()
    with pytest.raises(ValueError):
        Channel(sim, "bad", capacity=0)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(), min_size=0, max_size=200))
def test_property_everything_sent_is_received_in_order(items):
    """No beat is ever lost, duplicated, or reordered."""
    sim = Simulator()
    ch = Channel(sim, "ch", capacity=3)
    sent = []
    got = []
    pending = list(items)

    class P(Component):
        def tick(self, cycle):
            if pending and ch.can_send():
                item = pending.pop(0)
                ch.send(item)
                sent.append(item)

    class C(Component):
        def tick(self, cycle):
            if ch.can_recv():
                got.append(ch.recv())

    sim.add(P())
    sim.add(C())
    sim.run(len(items) * 3 + 10)
    assert sent == list(items)
    assert got == list(items)
