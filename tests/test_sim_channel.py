"""Unit tests for registered valid/ready channels."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Channel, Component, SimulationError, Simulator, drain


def make_channel(capacity=2):
    sim = Simulator()
    return sim, Channel(sim, "ch", capacity=capacity)


def test_send_visible_next_cycle_only():
    sim, ch = make_channel()
    ch.send("a")
    assert not ch.can_recv()
    sim.step()
    assert ch.can_recv()
    assert ch.peek() == "a"
    assert ch.recv() == "a"
    assert not ch.can_recv()


def test_fifo_order_preserved():
    sim, ch = make_channel(capacity=8)
    for i in range(5):
        ch.send(i)
    sim.step()
    assert drain(ch) == [0, 1, 2, 3, 4]


def test_can_send_respects_capacity():
    sim, ch = make_channel(capacity=2)
    ch.send(1)
    ch.send(2)
    assert not ch.can_send()
    with pytest.raises(SimulationError):
        ch.send(3)


def test_pop_does_not_free_space_same_cycle():
    # Determinism: the sender's view is the snapshot at the clock edge.
    sim, ch = make_channel(capacity=1)
    ch.send(1)
    sim.step()
    assert ch.recv() == 1
    assert not ch.can_send()  # freed space only visible after commit
    sim.step()
    assert ch.can_send()


def test_capacity_2_sustains_one_beat_per_cycle():
    """A skid-buffered channel must not halve throughput in steady state."""
    sim = Simulator()
    ch = Channel(sim, "ch", capacity=2)

    class Producer(Component):
        def __init__(self):
            super().__init__()
            self.n = 0

        def tick(self, cycle):
            if ch.can_send():
                ch.send(self.n)
                self.n += 1

    class Consumer(Component):
        def __init__(self):
            super().__init__()
            self.got = []

        def tick(self, cycle):
            if ch.can_recv():
                self.got.append(ch.recv())

    prod = sim.add(Producer())
    cons = sim.add(Consumer())
    sim.run(100)
    # one-cycle ramp-up, then one beat per cycle
    assert len(cons.got) >= 98
    assert cons.got == sorted(cons.got)


def test_throughput_independent_of_tick_order():
    """Consumer-before-producer must give the same count as the reverse."""
    counts = []
    for order in ("pc", "cp"):
        sim = Simulator()
        ch = Channel(sim, "ch", capacity=2)
        got = []

        class P(Component):
            def __init__(self):
                super().__init__()
                self.n = 0

            def tick(self, cycle):
                if ch.can_send():
                    ch.send(self.n)
                    self.n += 1

        class C(Component):
            def tick(self, cycle):
                if ch.can_recv():
                    got.append(ch.recv())

        if order == "pc":
            sim.add(P())
            sim.add(C())
        else:
            sim.add(C())
            sim.add(P())
        sim.run(50)
        counts.append(len(got))
    assert counts[0] == counts[1]


def test_peek_and_recv_on_empty_raise():
    _, ch = make_channel()
    with pytest.raises(SimulationError):
        ch.peek()
    with pytest.raises(SimulationError):
        ch.recv()


def test_occupancy_counts_pending_and_committed():
    sim, ch = make_channel(capacity=4)
    ch.send(1)
    assert ch.occupancy == 1
    sim.step()
    ch.send(2)
    assert ch.occupancy == 2


def test_stats_counters():
    sim, ch = make_channel(capacity=4)
    ch.send(1)
    ch.send(2)
    sim.step()
    ch.recv()
    assert ch.sent_total == 2
    assert ch.recv_total == 1
    assert ch.busy_cycles == 1


def test_reset_clears_everything():
    sim, ch = make_channel()
    ch.send(1)
    sim.step()
    sim.reset()
    assert not ch.can_recv()
    assert ch.occupancy == 0
    assert ch.sent_total == 0


def test_capacity_must_be_positive():
    sim = Simulator()
    with pytest.raises(ValueError):
        Channel(sim, "bad", capacity=0)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(), min_size=0, max_size=200))
def test_property_everything_sent_is_received_in_order(items):
    """No beat is ever lost, duplicated, or reordered."""
    sim = Simulator()
    ch = Channel(sim, "ch", capacity=3)
    sent = []
    got = []
    pending = list(items)

    class P(Component):
        def tick(self, cycle):
            if pending and ch.can_send():
                item = pending.pop(0)
                ch.send(item)
                sent.append(item)

    class C(Component):
        def tick(self, cycle):
            if ch.can_recv():
                got.append(ch.recv())

    sim.add(P())
    sim.add(C())
    sim.run(len(items) * 3 + 10)
    assert sent == list(items)
    assert got == list(items)


# ----------------------------------------------------------------------
# batch API: send_many / recv_up_to / move_to
# ----------------------------------------------------------------------
def test_send_many_is_one_commit_of_the_whole_run():
    sim = Simulator()
    ch = Channel(sim, "c", capacity=4)
    ch.send_many(["a", "b", "c"])
    assert ch.sent_total == 3
    assert not ch.can_recv()  # registered: visible only after the commit
    sim.step()
    assert [ch.recv() for _ in range(3)] == ["a", "b", "c"]


def test_send_many_respects_headroom():
    import pytest

    sim = Simulator()
    ch = Channel(sim, "c", capacity=2)
    with pytest.raises(SimulationError):
        ch.send_many([1, 2, 3])
    ch.send_many([])  # empty run is a no-op
    assert ch.sent_total == 0


def test_recv_up_to_drains_committed_beats_only():
    sim = Simulator()
    ch = Channel(sim, "c", capacity=4)
    ch.send_many([1, 2, 3])
    sim.step()
    ch.send(4)  # pending this cycle: must not be drained
    assert ch.recv_up_to(2) == [1, 2]
    assert ch.recv_up_to() == [3]
    assert ch.recv_up_to() == []
    assert ch.recv_total == 3


def test_batch_counters_match_per_beat_counters():
    sim = Simulator()
    a = Channel(sim, "a", capacity=4)
    b = Channel(sim, "b", capacity=4)
    a.send_many([1, 2, 3])
    for item in (1, 2, 3):
        b.send(item)
    sim.step()
    assert (a.sent_total, a.occupancy) == (b.sent_total, b.occupancy)
    assert a.recv_up_to() == [b.recv() for _ in range(3)]
    assert a.recv_total == b.recv_total


def test_move_to_relays_one_beat_with_full_accounting():
    sim = Simulator()
    src = Channel(sim, "src")
    dst = Channel(sim, "dst", capacity=1)
    assert not src.move_to(dst)  # nothing committed yet
    src.send("x")
    src.send("y")
    sim.step()
    assert src.move_to(dst)
    assert (src.recv_total, dst.sent_total) == (1, 1)
    assert not src.move_to(dst)  # dst headroom exhausted
    sim.step()
    assert dst.recv() == "x"
    sim.step()  # snapshot refresh: the freed slot becomes sendable
    assert src.move_to(dst, transform=str.upper)
    sim.step()
    assert dst.recv() == "Y"


def test_wire_move_to_hands_off_in_the_same_cycle():
    from repro.realm.wires import Wire

    a = Wire("a")
    b = Wire("b")
    assert not a.move_to(b)
    a.send("beat")
    assert a.move_to(b)
    assert a.can_send() and b.peek() == "beat"
    a.send("next")
    assert not a.move_to(b)  # b still full
