"""Tests for the command-line interface."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import build_parser, main, parse_cli_value

SRC_DIR = Path(__file__).resolve().parent.parent / "src"

TINY_SCENARIO = """
[scenario]
name = "tiny"
seed = 3

[run]
until = ["core"]
max_cycles = 50_000

[topology]
[[topology.managers]]
name = "core"

[[topology.memories]]
name = "mem"
kind = "sram"
base = 0x0
size = 0x1_0000

[traffic.core]
kind = "core"
pattern = "sequential"
n_accesses = 8

[campaign]
baseline = "base"
[[campaign.points]]
label = "base"
[[campaign.points]]
label = "gapped"
[campaign.points.set]
"traffic.core.gap" = 4

[smoke.set]
"traffic.core.n_accesses" = 2
"""


def test_table1_command(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "CVA6" in out
    assert "overhead" in out


def test_table2_command(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "Burst Splitter" in out


def test_fig6a_command_small(capsys):
    assert main(["--accesses", "30", "--fragmentations", "256,1",
                 "fig6a"]) == 0
    out = capsys.readouterr().out
    assert "single-source" in out
    assert "frag=1" in out


def test_fig6b_command_small(capsys):
    assert main(["--accesses", "30", "fig6b"]) == 0
    out = capsys.readouterr().out
    assert "dma=1/5" in out


def test_experiment_options_accepted_after_the_subcommand(capsys):
    # The pre-subparser CLI accepted options in either position.
    assert main(["fig6a", "--accesses", "30", "--fragmentations",
                 "256,1"]) == 0
    assert "frag=1" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["nope"])


# ----------------------------------------------------------------------
# no subcommand: help + exit status 2 (not a traceback)
# ----------------------------------------------------------------------
def test_no_subcommand_prints_help_and_returns_2(capsys):
    assert main([]) == 2
    out = capsys.readouterr().out
    assert "usage: repro" in out
    assert "run" in out and "fig6a" in out


def test_module_invocation_without_subcommand_exits_2():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC_DIR)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro"], capture_output=True, text=True,
        env=env,
    )
    assert proc.returncode == 2
    assert "usage: repro" in proc.stdout
    assert "Traceback" not in proc.stderr


# ----------------------------------------------------------------------
# scenario subcommands
# ----------------------------------------------------------------------
@pytest.fixture
def tiny_scenario(tmp_path):
    path = tmp_path / "tiny.toml"
    path.write_text(TINY_SCENARIO)
    return path


def test_run_command_prints_table_and_writes_reports(
    tiny_scenario, tmp_path, capsys
):
    json_path = tmp_path / "report.json"
    csv_path = tmp_path / "report.csv"
    assert main(["run", str(tiny_scenario), "--json", str(json_path),
                 "--csv", str(csv_path)]) == 0
    out = capsys.readouterr().out
    assert "base" in out and "gapped" in out
    report = json.loads(json_path.read_text())
    assert report["scenario"] == "tiny"
    assert [p["label"] for p in report["points"]] == ["base", "gapped"]
    assert report["points"][0]["perf_percent"] == 100.0
    assert csv_path.read_text().startswith("label,")


def test_run_command_smoke_applies_overrides(tiny_scenario, tmp_path):
    json_path = tmp_path / "report.json"
    assert main(["run", str(tiny_scenario), "--smoke",
                 "--json", str(json_path)]) == 0
    report = json.loads(json_path.read_text())
    latency = report["points"][0]["latency"]
    assert latency["count"] == 2  # smoke trims the trace to 2 accesses


def test_run_command_set_overrides(tiny_scenario, tmp_path):
    json_path = tmp_path / "report.json"
    assert main(["run", str(tiny_scenario),
                 "--set", "traffic.core.n_accesses=3",
                 "--json", str(json_path)]) == 0
    report = json.loads(json_path.read_text())
    assert report["points"][0]["latency"]["count"] == 3


def test_run_command_scenario_error_exits_1(tmp_path, capsys):
    bad = tmp_path / "bad.toml"
    bad.write_text("[scenario]\nname = 'x'\n")
    assert main(["run", str(bad)]) == 1
    err = capsys.readouterr().err
    assert "scenario error" in err


def test_run_command_missing_file_exits_1(tmp_path, capsys):
    assert main(["run", str(tmp_path / "ghost.toml")]) == 1
    assert "scenario error" in capsys.readouterr().err


def test_sweep_command_replaces_campaign(tiny_scenario, tmp_path, capsys):
    json_path = tmp_path / "report.json"
    assert main(["sweep", str(tiny_scenario),
                 "--axis", "traffic.core.gap=0,6",
                 "--json", str(json_path)]) == 0
    report = json.loads(json_path.read_text())
    assert [p["label"] for p in report["points"]] == ["gap=0", "gap=6"]
    # The ad-hoc sweep dropped the file's explicit points.
    out = capsys.readouterr().out
    assert "gapped" not in out


def test_sweep_command_empty_axis_values_errors(tiny_scenario, capsys):
    assert main(["sweep", str(tiny_scenario),
                 "--axis", "traffic.core.gap="]) == 1
    assert "at least one value" in capsys.readouterr().err


def test_run_command_watchdog_timeout_exits_1(tiny_scenario, capsys):
    assert main(["run", str(tiny_scenario),
                 "--set", "run.max_cycles=2"]) == 1
    err = capsys.readouterr().err
    assert "scenario error" in err
    assert "Traceback" not in err


def test_sweep_command_bad_axis_value_errors(tiny_scenario, capsys):
    assert main(["sweep", str(tiny_scenario),
                 "--axis", "traffic.core.gap=zzz,1"]) == 1
    assert "scenario error" in capsys.readouterr().err


def test_parse_cli_value_types():
    assert parse_cli_value("256") == 256
    assert parse_cli_value("0x40") == 64
    assert parse_cli_value("2_000") == 2000
    assert parse_cli_value("1.5") == 1.5
    assert parse_cli_value("true") is True
    assert parse_cli_value("False") is False
    assert parse_cli_value("unlimited") == "unlimited"


# ----------------------------------------------------------------------
# control-plane subcommands
# ----------------------------------------------------------------------
PROTECTED_SCENARIO = TINY_SCENARIO.replace(
    'name = "core"',
    'name = "core"\nprotect = true\ngranularity = 8',
)


@pytest.fixture
def protected_scenario(tmp_path):
    path = tmp_path / "protected.toml"
    path.write_text(PROTECTED_SCENARIO)
    return path


def test_probes_command_lists_paths(protected_scenario, capsys):
    assert main(["probes", str(protected_scenario)]) == 0
    out = capsys.readouterr().out
    assert "probes" in out
    assert "port.core.ar.sent" in out
    assert "realm.core.region0.budget_remaining" in out
    assert "traffic.core.progress" in out


def test_knobs_command_lists_paths_and_values(protected_scenario, capsys):
    assert main(["knobs", str(protected_scenario)]) == 0
    out = capsys.readouterr().out
    assert "realm.core.region0.budget_bytes" in out
    assert "realm.core.granularity" in out
    assert "[intrusive]" in out
    assert "8" in out  # the declared granularity reads back


def test_probes_command_scenario_error_exits_1(tmp_path, capsys):
    bad = tmp_path / "bad.toml"
    bad.write_text("[scenario]\nname = 'x'\n")
    assert main(["probes", str(bad)]) == 1
    err = capsys.readouterr().err
    assert "scenario error" in err and "Traceback" not in err


def test_run_command_writes_timeseries_csv(protected_scenario, tmp_path):
    spec = protected_scenario.read_text() + """
[probes]
every = 50
sample = ["realm.core.region0.total_bytes"]
"""
    path = tmp_path / "sampled.toml"
    path.write_text(spec)
    ts_path = tmp_path / "ts.csv"
    assert main(["run", str(path), "--timeseries", str(ts_path)]) == 0
    lines = ts_path.read_text().splitlines()
    assert lines[0] == "label,rule,cycle,probe,value"
    assert any("realm.core.region0.total_bytes" in line
               for line in lines[1:])


# ----------------------------------------------------------------------
# checkpoint / resume / fork flags
# ----------------------------------------------------------------------
def test_run_checkpoint_every_and_resume_round_trip(
    tiny_scenario, tmp_path, capsys
):
    ckpt_dir = tmp_path / "cks"
    ref_json = tmp_path / "ref.json"
    assert main(["run", str(tiny_scenario), "--json", str(ref_json),
                 "--set", "traffic.core.gap=40"]) == 0
    assert main(["run", str(tiny_scenario), "--checkpoint-every", "100",
                 "--checkpoint-dir", str(ckpt_dir),
                 "--set", "traffic.core.gap=40"]) == 0
    capsys.readouterr()
    files = sorted(ckpt_dir.glob("tiny-base-*.ckpt"))
    assert files, "no checkpoint files written"
    resumed_json = tmp_path / "resumed.json"
    assert main(["run", "--resume", str(files[0]),
                 "--json", str(resumed_json)]) == 0
    out = capsys.readouterr().out
    assert "resumed tiny[base]" in out
    reference = json.loads(ref_json.read_text())
    resumed = json.loads(resumed_json.read_text())
    base = next(p for p in reference["points"] if p["label"] == "base")
    assert resumed["points"][0]["observables"] == base["observables"]


def test_run_resume_rejects_garbage(tmp_path, capsys):
    bad = tmp_path / "bad.ckpt"
    bad.write_bytes(b"nope")
    assert main(["run", "--resume", str(bad)]) == 1
    assert "resume error" in capsys.readouterr().err


def test_run_without_file_or_resume_exits_2(capsys):
    assert main(["run"]) == 2
    assert "scenario file or --resume" in capsys.readouterr().err


def test_run_fork_flag_falls_back_cleanly(tiny_scenario, capsys):
    assert main(["run", str(tiny_scenario), "--fork"]) == 0
    out = capsys.readouterr().out
    assert "base" in out and "gapped" in out
    # No provable shared prefix here: no fork-point banner printed.
    assert "fork-point execution" not in out


# ----------------------------------------------------------------------
# live telemetry
# ----------------------------------------------------------------------
TELEMETRY_SCENARIO = """
[scenario]
name = "live"
seed = 7

[run]
horizon = 20_000

[topology]
[[topology.managers]]
name = "hog"

[[topology.memories]]
name = "mem"
kind = "sram"
base = 0x0
size = 0x1_0000

[traffic.hog]
kind = "hog"
window = 0x8000
beats = 16

[probes]
every = 200
sample = ["traffic.hog.bytes_stolen"]
"""


def test_run_telemetry_without_clients_is_invisible(tmp_path, capsys):
    """--telemetry 0 with nobody watching: the run completes normally
    and the report is byte-identical to an unserved run."""
    path = tmp_path / "live.toml"
    path.write_text(TELEMETRY_SCENARIO)
    served = tmp_path / "served.json"
    plain = tmp_path / "plain.json"
    assert main(["run", str(path), "--telemetry", "0",
                 "--json", str(served)]) == 0
    out = capsys.readouterr().out
    assert "telemetry: listening on 127.0.0.1:" in out
    assert main(["run", str(path), "--json", str(plain)]) == 0
    assert served.read_text() == plain.read_text()


def test_watch_bad_target_exits_1(capsys):
    assert main(["watch", "no-port-here"]) == 1
    assert "watch error" in capsys.readouterr().err


def test_watch_connection_refused_exits_1(capsys):
    # Port 1 on localhost is never listening; --retry 0 fails fast.
    assert main(["watch", "127.0.0.1:1", "--retry", "0"]) == 1
    assert "watch error" in capsys.readouterr().err


def test_run_telemetry_watch_once_end_to_end(tmp_path):
    """The CI smoke flow: `run --telemetry --telemetry-wait` in one
    process, `watch --once` in another, one valid frame on stdout."""
    path = tmp_path / "live.toml"
    path.write_text(TELEMETRY_SCENARIO)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC_DIR)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    run_proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "run", str(path),
         "--telemetry", "0", "--telemetry-wait"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
    )
    try:
        # The bound port is announced before the run starts (and the
        # run then blocks on --telemetry-wait until the watcher shows).
        line = run_proc.stdout.readline()
        assert "telemetry: listening on" in line, line
        target = line.rsplit(" ", 1)[-1].strip()
        watch_proc = subprocess.run(
            [sys.executable, "-m", "repro", "watch", target,
             "--once", "--retry", "50"],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert watch_proc.returncode == 0, watch_proc.stderr
        frame = json.loads(watch_proc.stdout)
        assert frame["type"] == "frame"
        assert frame["point"] == "live"
        assert frame["cycle"] % 200 == 0
        assert "traffic.hog.bytes_stolen" in frame["values"]
        out, err = run_proc.communicate(timeout=120)
        assert run_proc.returncode == 0, err
        assert "live" in out  # the campaign table still prints
    finally:
        if run_proc.poll() is None:
            run_proc.kill()
            run_proc.communicate()
