"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_table1_command(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "CVA6" in out
    assert "overhead" in out


def test_table2_command(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "Burst Splitter" in out


def test_fig6a_command_small(capsys):
    assert main(["--accesses", "30", "--fragmentations", "256,1",
                 "fig6a"]) == 0
    out = capsys.readouterr().out
    assert "single-source" in out
    assert "frag=1" in out


def test_fig6b_command_small(capsys):
    assert main(["--accesses", "30", "fig6b"]) == 0
    out = capsys.readouterr().out
    assert "dma=1/5" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["nope"])
