"""Error-injection tests: SLVERR/DECERR propagation through the full
REALM + crossbar stack (errors must never be silently dropped)."""

import pytest

from repro.axi import AxiBundle, Resp
from repro.interconnect import AddressMap, AxiCrossbar
from repro.mem import SramMemory
from repro.realm import RealmUnit, RealmUnitParams
from repro.sim import Simulator
from repro.traffic import ManagerDriver


def build_stack(sim, sram_size=0x100):
    """driver -> REALM -> crossbar -> small SRAM (easy to overrun)."""
    up = AxiBundle(sim, "up")
    down = AxiBundle(sim, "down")
    realm = sim.add(RealmUnit(up, down, RealmUnitParams()))
    sub = AxiBundle(sim, "mem")
    amap = AddressMap()
    amap.add_range(0x0, 0x10000, port=0)  # window larger than the SRAM
    sim.add(AxiCrossbar([down], [sub], amap))
    sram = sim.add(SramMemory(sub, base=0, size=sram_size))
    drv = sim.add(ManagerDriver(up))
    return drv, realm, sram


def finish(sim, drv):
    sim.run_until(lambda: drv.idle, max_cycles=50_000, what="driver")


def test_slverr_read_through_realm(sim):
    drv, realm, sram = build_stack(sim)
    op = drv.read(0x8000)  # decodes, but beyond the SRAM backing
    finish(sim, drv)
    assert op.resp == Resp.SLVERR


def test_slverr_write_coalesced_across_fragments(sim):
    """A fragmented write hitting the SRAM boundary: at least one fragment
    errors, and the coalesced B must carry the error upstream."""
    drv, realm, sram = build_stack(sim, sram_size=0x100)
    realm.set_granularity(2)
    # 8 beats starting at 0xE0: beats 0..3 in range, 4..7 beyond 0x100.
    op = drv.write(0xE0, bytes(64), beats=8)
    finish(sim, drv)
    assert op.resp == Resp.SLVERR
    assert len(drv.completed) == 1  # still exactly one response


def test_partial_slverr_read_burst_reports_error(sim):
    drv, realm, sram = build_stack(sim, sram_size=0x100)
    realm.set_granularity(2)
    op = drv.read(0xE0, beats=8)
    finish(sim, drv)
    assert op.resp == Resp.SLVERR
    assert len(op.rdata) == 64  # all beats delivered despite the error


def test_decerr_through_realm(sim):
    """Decode misses behind a REALM unit return DECERR end to end."""
    up = AxiBundle(sim, "up")
    down = AxiBundle(sim, "down")
    realm = sim.add(RealmUnit(up, down, RealmUnitParams()))
    sub = AxiBundle(sim, "mem")
    amap = AddressMap()
    amap.add_range(0x0, 0x1000, port=0)
    sim.add(AxiCrossbar([down], [sub], amap))
    sim.add(SramMemory(sub, base=0, size=0x1000))
    drv = sim.add(ManagerDriver(up))
    r = drv.read(0x9000, beats=4)
    w = drv.write(0x9000, bytes(8))
    finish(sim, drv)
    assert r.resp == Resp.DECERR
    assert w.resp == Resp.DECERR


def test_error_burst_does_not_wedge_subsequent_traffic(sim):
    drv, realm, sram = build_stack(sim)
    drv.read(0x8000)  # SLVERR
    ok = drv.write(0x10, bytes(range(8)))
    back = drv.read(0x10)
    finish(sim, drv)
    assert ok.resp == Resp.OKAY
    assert back.rdata == bytes(range(8))


def test_mixed_ok_and_error_fragments_keep_budget_accounting(sim):
    drv, realm, sram = build_stack(sim, sram_size=0x100)
    from repro.realm import RegionConfig

    realm.set_granularity(2)
    realm.configure_region(
        0, RegionConfig(base=0, size=0x10000, budget_bytes=1 << 40,
                        period_cycles=1 << 40)
    )
    drv.read(0xE0, beats=8)
    finish(sim, drv)
    sim.run(5)
    snap = realm.region_snapshot(0)
    assert snap.read_bytes == 64  # charged for the whole burst
    assert snap.txn_count == 4  # four fragments tracked
