"""Span-replay (DESIGN.md section 11): closed-form steady-state
evolution must be bit-identical to step-by-step execution.

The property test drives a randomized streaming system — burst lengths,
fragment granularities, finite budgets that exhaust mid-stream, period
edges crossing running spans, write buffer on/off — through the same
horizon with span replay enabled and disabled, and diffs every
observable.  The targeted tests pin the negotiation machinery itself:
abort taxonomy, hook clamping, probe publication, and profile stats.
"""

from __future__ import annotations

from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.realm import RegionConfig
from repro.realm.config import RealmUnitParams
from repro.scenario import apply_smoke, expand, load_file, run_point
from repro.sim import Simulator
from repro.sim.span import MIN_SPAN
from repro.system import SystemBuilder
from repro.traffic import DmaEngine

SCENARIO_DIR = Path(__file__).resolve().parent.parent / "scenarios"

UNLIMITED = 1 << 62


def _streaming_system(
    *,
    span_replay: bool,
    burst_beats: int,
    granularity: int,
    budget: int,
    period: int,
    gap: int,
    write_buffer: bool,
):
    sim = Simulator(active_set=True, batched=True, span_replay=span_replay)
    system = (
        SystemBuilder(sim=sim)
        .with_crossbar()
        .add_manager(
            "dma",
            granularity=granularity,
            realm_params=RealmUnitParams(write_buffer_present=write_buffer),
            regions=[RegionConfig(base=0, size=0x40000,
                                  budget_bytes=budget,
                                  period_cycles=period)],
        )
        .add_sram("mem", base=0, size=0x40000)
        .build()
    )
    dma = system.attach(
        "dma",
        lambda port: DmaEngine(port, src_base=0x0, src_size=0x8000,
                               dst_base=0x10000, dst_size=0x8000,
                               burst_beats=burst_beats,
                               inter_burst_gap=gap),
    )
    return system, dma


def _fingerprint(system, dma) -> tuple:
    realm = system.realm("dma")
    snap = realm.region_snapshot(0)
    memory = system.memories["mem"]
    return (
        system.sim.cycle,
        dma.bytes_read,
        dma.bytes_written,
        dma.read_bursts,
        dma.write_bursts,
        snap.total_bytes,
        snap.read_bytes,
        snap.write_bytes,
        snap.bytes_this_period,
        snap.stall_cycles,
        snap.txn_count,
        snap.latency_sum,
        snap.latency_max,
        snap.cycles_into_period,
        realm.mr.denied_by_budget,
        realm.denied_by_budget,
        realm.isolated,
        realm.outstanding,
        memory.reads_served,
        memory.writes_served,
        memory.read_beats,
        memory.write_beats,
        tuple(
            (ch.sent_total, ch.recv_total, ch.busy_cycles)
            for ch in system.ports["dma"].channels
        ),
    )


def _run_fingerprint(span_replay: bool, horizon: int, **cfg) -> tuple:
    system, dma = _streaming_system(span_replay=span_replay, **cfg)
    system.sim.run(horizon)
    return _fingerprint(system, dma)


@settings(max_examples=25, deadline=None)
@given(
    burst_beats=st.sampled_from([4, 16, 64, 256]),
    granularity=st.sampled_from([1, 16, 64, 256]),
    budget=st.sampled_from([2048, 4096, UNLIMITED]),
    period=st.sampled_from([512, 1024, UNLIMITED]),
    gap=st.sampled_from([0, 3]),
    write_buffer=st.booleans(),
    horizon=st.integers(min_value=300, max_value=2500),
)
def test_span_replay_equals_step_by_step(
    burst_beats, granularity, budget, period, gap, write_buffer, horizon
):
    """Closed-form span evolution == per-cycle stepping for randomized
    configurations, including budget exhaustion (small budgets deplete
    after one burst) and period-edge replenishes inside running spans."""
    if period == UNLIMITED:
        budget = UNLIMITED  # a finite budget needs a period to replenish
    cfg = dict(burst_beats=burst_beats, granularity=granularity,
               budget=budget, period=period, gap=gap,
               write_buffer=write_buffer)
    with_spans = _run_fingerprint(True, horizon, **cfg)
    without = _run_fingerprint(False, horizon, **cfg)
    assert with_spans == without


def test_spans_engage_on_steady_stream():
    """The showcase configuration actually exercises the machinery: most
    of the run is covered by spans, and the per-unit counters agree with
    the kernel's."""
    system, _ = _streaming_system(
        span_replay=True, burst_beats=256, granularity=256,
        budget=UNLIMITED, period=UNLIMITED, gap=0, write_buffer=False,
    )
    system.sim.run(4000)
    sim = system.sim
    assert sim.spans_entered > 0
    assert sim.span_cycles_replayed > 2000, (
        "steady streaming should spend most cycles inside spans"
    )
    realm = system.realm("dma")
    assert realm.span_cycles <= sim.span_cycles_replayed
    assert realm.span_hits <= sim.spans_entered


def test_span_replay_off_never_spans():
    system, _ = _streaming_system(
        span_replay=False, burst_beats=256, granularity=256,
        budget=UNLIMITED, period=UNLIMITED, gap=0, write_buffer=False,
    )
    system.sim.run(2000)
    assert system.sim.spans_entered == 0
    assert system.sim.span_cycles_replayed == 0
    assert not system.sim.span_replay_enabled


def test_reset_clears_span_state():
    system, _ = _streaming_system(
        span_replay=True, burst_beats=256, granularity=256,
        budget=UNLIMITED, period=UNLIMITED, gap=0, write_buffer=False,
    )
    system.sim.run(2000)
    assert system.sim.spans_entered > 0
    system.sim.reset()
    assert system.sim.spans_entered == 0
    assert system.sim.span_cycles_replayed == 0
    assert system.sim.span_aborts == {}
    assert system.sim._span_probe is None
    assert system.realm("dma").span_hits == 0
    assert system.realm("dma").span_cycles == 0


def test_scheduled_hook_clamps_spans_to_its_boundary():
    """A hook due within MIN_SPAN cycles of a would-be span start aborts
    the span (cause: window), so scheduled observation/reconfiguration
    always executes on the per-beat path at exactly its cycle."""
    system, _ = _streaming_system(
        span_replay=True, burst_beats=256, granularity=256,
        budget=UNLIMITED, period=UNLIMITED, gap=0, write_buffer=False,
    )
    seen = []
    sim = system.sim
    # A hook every 2 cycles keeps n_max below MIN_SPAN forever.
    def reschedule(cycle):
        seen.append(cycle)
        if cycle < 996:
            sim.call_at(cycle + 2, reschedule)
    sim.call_at(2, reschedule)
    sim.run(1000)
    assert sim.spans_entered == 0
    assert sim.span_aborts.get("window", 0) > 0
    assert seen == list(range(2, 998, 2))
    assert MIN_SPAN > 2  # the premise of the clamp in this test


def test_span_probes_published_per_unit():
    spec = apply_smoke(load_file(SCENARIO_DIR / "stream_steady.toml"))
    point = expand(spec)[0]
    from repro.scenario.runner import _elaborate_point, _execute_run

    system, generators = _elaborate_point(point, active_set=True, batched=True)
    _execute_run(system, point.spec, point.label, generators)
    probes = system.control.probes
    for manager in ("dma", "idma"):
        hits = probes.read(f"realm.{manager}.span_hits")
        cycles = probes.read(f"realm.{manager}.span_cycles")
        unit = system.realms[manager]
        assert hits == unit.span_hits
        assert cycles == unit.span_cycles
    assert sum(
        probes.read(f"realm.{m}.span_cycles") for m in ("dma", "idma")
    ) > 0


def test_profile_reports_span_stats():
    spec = apply_smoke(load_file(SCENARIO_DIR / "stream_steady.toml"))
    point = expand(spec)[0]
    result = run_point(point, profile=True)
    stats = result.span_stats
    assert stats is not None and stats["enabled"]
    assert stats["spans_entered"] > 0
    assert stats["span_cycles_replayed"] > 0
    assert set(stats["units"]) == {"dma", "idma"}
    total = sum(u["span_cycles"] for u in stats["units"].values())
    assert total >= stats["span_cycles_replayed"]  # both units join most spans
    # The stats describe the execution strategy, not the modelled SoC:
    # the per-beat reference reports the same observables with zero spans.
    reference = run_point(point, batched=False, profile=True)
    assert reference.span_stats["spans_entered"] == 0
    assert reference.observables == result.observables


def test_span_stats_absent_without_profile():
    spec = apply_smoke(load_file(SCENARIO_DIR / "stream_steady.toml"))
    point = expand(spec)[0]
    assert run_point(point).span_stats is None
