"""Unit tests for workload trace generation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic import (
    random_trace,
    sequential_trace,
    strided_trace,
    susan_like_trace,
)


def test_susan_trace_is_deterministic():
    a = susan_like_trace(n_accesses=50, seed=1)
    b = susan_like_trace(n_accesses=50, seed=1)
    assert a.ops == b.ops


def test_susan_trace_seed_changes_content():
    a = susan_like_trace(n_accesses=50, seed=1)
    b = susan_like_trace(n_accesses=50, seed=2)
    assert a.ops != b.ops


def test_susan_trace_respects_footprint():
    trace = susan_like_trace(
        n_accesses=200, base=0x1000, footprint=4096, beats=1, size=3
    )
    for op in trace:
        assert 0x1000 <= op.addr < 0x1000 + 4096


def test_susan_trace_read_fraction():
    trace = susan_like_trace(n_accesses=500, read_fraction=0.8, seed=3)
    assert 0.7 < trace.read_fraction < 0.9
    all_reads = susan_like_trace(n_accesses=100, read_fraction=1.0)
    assert all_reads.read_fraction == 1.0


def test_susan_trace_gap_mean_zero_means_no_gaps():
    trace = susan_like_trace(n_accesses=50, gap_mean=0)
    assert trace.total_gap_cycles == 0


def test_susan_trace_validation():
    with pytest.raises(ValueError):
        susan_like_trace(n_accesses=0)
    with pytest.raises(ValueError):
        susan_like_trace(read_fraction=1.5)


def test_sequential_trace_addresses():
    trace = sequential_trace(4, base=0x100, beats=2, size=3)
    assert [op.addr for op in trace] == [0x100, 0x110, 0x120, 0x130]
    assert trace.total_bytes == 4 * 16


def test_strided_trace():
    trace = strided_trace(3, base=0, stride=64)
    assert [op.addr for op in trace] == [0, 64, 128]


def test_random_trace_within_footprint():
    trace = random_trace(100, base=0x2000, footprint=1024)
    for op in trace:
        assert 0x2000 <= op.addr < 0x2000 + 1024


def test_trace_total_bytes():
    trace = sequential_trace(10, beats=1, size=3)
    assert trace.total_bytes == 80


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=100),
    beats=st.sampled_from([1, 2, 4]),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_susan_trace_size_and_alignment(n, beats, seed):
    trace = susan_like_trace(n_accesses=n, beats=beats, seed=seed)
    assert len(trace) == n
    nbytes = beats * 8
    for op in trace:
        assert op.addr % nbytes == 0
        assert op.beats == beats
