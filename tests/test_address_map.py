"""Unit tests for the address map."""

import pytest

from repro.interconnect import AddressMap, AddressRange


def test_range_contains():
    rng = AddressRange(0x1000, 0x1000, "spm")
    assert rng.contains(0x1000)
    assert rng.contains(0x1FFF)
    assert not rng.contains(0x2000)
    assert not rng.contains(0xFFF)
    assert rng.end == 0x2000


def test_range_contains_span():
    rng = AddressRange(0x1000, 0x100)
    assert rng.contains_span(0x1000, 0x100)
    assert not rng.contains_span(0x10FF, 2)


def test_range_rejects_bad_params():
    with pytest.raises(ValueError):
        AddressRange(0, 0)
    with pytest.raises(ValueError):
        AddressRange(-1, 16)


def test_range_overlap():
    a = AddressRange(0x0, 0x100)
    b = AddressRange(0x80, 0x100)
    c = AddressRange(0x100, 0x100)
    assert a.overlaps(b)
    assert not a.overlaps(c)


def test_map_decode():
    amap = AddressMap()
    amap.add_range(0x0000, 0x1000, port=0, name="llc")
    amap.add_range(0x1000, 0x1000, port=1, name="spm")
    assert amap.decode(0x0) == 0
    assert amap.decode(0xFFF) == 0
    assert amap.decode(0x1000) == 1
    assert amap.decode(0x2000) is None


def test_map_rejects_overlap():
    amap = AddressMap()
    amap.add_range(0x0, 0x1000, port=0)
    with pytest.raises(ValueError):
        amap.add_range(0x800, 0x1000, port=1)


def test_map_decode_span():
    amap = AddressMap()
    amap.add_range(0x0, 0x100, port=0)
    assert amap.decode_span(0x0, 0x100) == 0
    assert amap.decode_span(0xF8, 0x10) is None


def test_map_range_of_and_len():
    amap = AddressMap()
    amap.add_range(0x0, 0x100, port=0, name="a")
    assert amap.range_of(0x10).name == "a"
    assert amap.range_of(0x200) is None
    assert len(amap) == 1
    assert amap.entries[0][1] == 0
