"""Tests for the QoS-400-style priority baseline, including the paper's
starvation argument against priority-based regulation."""

import pytest

from repro.axi import AxiBundle
from repro.baselines.qos400 import QosArbiter, QosTagger
from repro.interconnect import AddressMap, AxiCrossbar
from repro.mem import SramMemory
from repro.sim import Simulator
from repro.traffic import BandwidthHog, ManagerDriver


# ----------------------------------------------------------------------
# arbiter
# ----------------------------------------------------------------------
def test_qos_arbiter_highest_priority_wins():
    prio = {0: 1, 1: 8, 2: 3}
    arb = QosArbiter(3, lambda i: prio[i])
    assert arb.grant([True, True, True]) == 1
    assert arb.grant([True, False, True]) == 2


def test_qos_arbiter_round_robin_among_equals():
    arb = QosArbiter(2, lambda i: 5)
    grants = [arb.grant([True, True]) for _ in range(4)]
    assert grants == [0, 1, 0, 1]


def test_qos_arbiter_none_when_idle():
    arb = QosArbiter(2, lambda i: 0)
    assert arb.grant([False, False]) is None
    assert arb.peek([False, False]) is None


def test_qos_arbiter_peek_does_not_advance():
    arb = QosArbiter(2, lambda i: 1)
    assert arb.peek([True, True]) == 0
    assert arb.grant([True, True]) == 0


def test_qos_arbiter_validation():
    with pytest.raises(ValueError):
        QosArbiter(0, lambda i: 0)
    arb = QosArbiter(2, lambda i: 0)
    with pytest.raises(ValueError):
        arb.grant([True])


# ----------------------------------------------------------------------
# tagger
# ----------------------------------------------------------------------
def test_tagger_stamps_qos(sim):
    up = AxiBundle(sim, "up")
    down = AxiBundle(sim, "down")
    sim.add(QosTagger(up, down, qos=7))
    sram = sim.add(SramMemory(down, base=0, size=0x1000))
    drv = sim.add(ManagerDriver(up))
    drv.read(0x0)
    sim.run(2)
    assert down.ar.peek().qos == 7 or down.ar.recv().qos == 7


def test_tagger_validates_range(sim):
    with pytest.raises(ValueError):
        QosTagger(AxiBundle(sim, "a"), AxiBundle(sim, "b"), qos=16)


def test_tagger_roundtrip(sim):
    up = AxiBundle(sim, "up")
    down = AxiBundle(sim, "down")
    sim.add(QosTagger(up, down, qos=3))
    sim.add(SramMemory(down, base=0, size=0x1000))
    drv = sim.add(ManagerDriver(up))
    drv.write(0x10, bytes(range(8)))
    op = drv.read(0x10)
    sim.run_until(lambda: drv.idle, max_cycles=1000, what="driver")
    assert op.rdata == bytes(range(8))


# ----------------------------------------------------------------------
# the starvation argument (Section II)
# ----------------------------------------------------------------------
def build_priority_system(sim, low_qos=0, high_qos=8):
    """high-priority hog + low-priority driver on a QoS crossbar."""
    hog_up = AxiBundle(sim, "hog")
    hog_down = AxiBundle(sim, "hog.down")
    low_up = AxiBundle(sim, "low")
    low_down = AxiBundle(sim, "low.down")
    sim.add(QosTagger(hog_up, hog_down, qos=high_qos, name="tag.hog"))
    sim.add(QosTagger(low_up, low_down, qos=low_qos, name="tag.low"))
    mem = AxiBundle(sim, "mem")
    amap = AddressMap()
    amap.add_range(0x0, 0x10000, port=0)
    sim.add(AxiCrossbar([hog_down, low_down], [mem], amap,
                        qos_arbitration=True))
    sim.add(SramMemory(mem, base=0, size=0x10000))
    hog = sim.add(BandwidthHog(hog_up, target_base=0, window=0x8000,
                               beats=64, max_outstanding=4))
    low = sim.add(ManagerDriver(low_up, name="low"))
    return hog, low


def test_priority_starves_low_priority_manager():
    """A saturating high-QoS manager starves a low-QoS one — exactly the
    failure mode the paper's credit-based design avoids."""
    sim = Simulator()
    hog, low = build_priority_system(sim)
    sim.run(50)  # let the hog saturate the request path
    op = low.read(0x9000)
    sim.run(3000)
    assert not op.done, "low-priority access should starve under QoS"


def test_round_robin_does_not_starve():
    """Same scenario on the default round-robin crossbar: no starvation."""
    sim = Simulator()
    hog_up = AxiBundle(sim, "hog")
    low_up = AxiBundle(sim, "low")
    mem = AxiBundle(sim, "mem")
    amap = AddressMap()
    amap.add_range(0x0, 0x10000, port=0)
    sim.add(AxiCrossbar([hog_up, low_up], [mem], amap))
    sim.add(SramMemory(mem, base=0, size=0x10000))
    sim.add(BandwidthHog(hog_up, target_base=0, window=0x8000, beats=64,
                         max_outstanding=4))
    low = sim.add(ManagerDriver(low_up, name="low"))
    sim.run(50)
    op = low.read(0x9000)
    sim.run(3000)
    assert op.done


def test_equal_qos_behaves_like_round_robin():
    sim = Simulator()
    hog, low = build_priority_system(sim, low_qos=8, high_qos=8)
    sim.run(50)
    op = low.read(0x9000)
    sim.run(3000)
    assert op.done
