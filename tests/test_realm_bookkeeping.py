"""Unit tests for M&R bookkeeping counters."""

from repro.realm import BookkeepingUnit, ThrottleUnit


def test_transfer_accounting():
    book = BookkeepingUnit()
    book.on_transfer(64, is_read=True)
    book.on_transfer(32, is_read=False)
    snap = book.snapshot()
    assert snap.total_bytes == 96
    assert snap.read_bytes == 64
    assert snap.write_bytes == 32
    assert snap.bytes_this_period == 96


def test_period_rollover_clears_period_counters_only():
    book = BookkeepingUnit()
    book.on_transfer(64, is_read=True)
    book.on_cycle(stalled=False)
    book.on_period_rollover()
    snap = book.snapshot()
    assert snap.bytes_this_period == 0
    assert snap.cycles_into_period == 0
    assert snap.total_bytes == 64


def test_bandwidth_is_bytes_per_cycle_in_period():
    book = BookkeepingUnit()
    for _ in range(10):
        book.on_cycle(stalled=False)
    book.on_transfer(40, is_read=True)
    assert book.snapshot().bandwidth == 4.0


def test_bandwidth_zero_at_period_start():
    assert BookkeepingUnit().snapshot().bandwidth == 0.0


def test_latency_stats():
    book = BookkeepingUnit()
    for lat in (10, 30, 20):
        book.on_latency(lat)
    snap = book.snapshot()
    assert snap.txn_count == 3
    assert snap.latency_sum == 60
    assert snap.latency_avg == 20.0
    assert snap.latency_max == 30
    assert snap.latency_min == 10


def test_latency_avg_empty():
    assert BookkeepingUnit().snapshot().latency_avg == 0.0


def test_stall_cycles():
    book = BookkeepingUnit()
    book.on_cycle(stalled=True)
    book.on_cycle(stalled=False)
    book.on_cycle(stalled=True)
    assert book.snapshot().stall_cycles == 2


def test_reset():
    book = BookkeepingUnit()
    book.on_transfer(10, is_read=True)
    book.on_latency(5)
    book.reset()
    snap = book.snapshot()
    assert snap.total_bytes == 0
    assert snap.txn_count == 0


# ----------------------------------------------------------------------
# throttle unit
# ----------------------------------------------------------------------
def test_throttle_disabled_constant_cap():
    thr = ThrottleUnit(max_outstanding=8, enabled=False)
    assert thr.allowed_outstanding(0.01) == 8
    assert thr.admits(7, 0.01)


def test_throttle_scales_with_budget():
    thr = ThrottleUnit(max_outstanding=8, enabled=True)
    assert thr.allowed_outstanding(1.0) == 8
    assert thr.allowed_outstanding(0.5) == 4
    assert thr.allowed_outstanding(0.0) == 1  # floor of one


def test_throttle_admits():
    thr = ThrottleUnit(max_outstanding=4, enabled=True)
    assert thr.admits(1, 0.5)
    assert not thr.admits(2, 0.5)


def test_throttle_clamps_fraction():
    thr = ThrottleUnit(max_outstanding=4, enabled=True)
    assert thr.allowed_outstanding(2.0) == 4
    assert thr.allowed_outstanding(-1.0) == 1


def test_throttle_validates():
    import pytest

    with pytest.raises(ValueError):
        ThrottleUnit(max_outstanding=0)
