"""Unit tests for the SRAM model (driven directly, no crossbar)."""

import pytest

from repro.axi import AxiBundle, BurstType, Resp
from repro.mem import SramMemory
from repro.sim import Simulator
from repro.traffic.driver import ManagerDriver


def make(read_latency=1, write_latency=1, size=0x1000):
    sim = Simulator()
    port = AxiBundle(sim, "mem")
    sram = sim.add(
        SramMemory(port, base=0, size=size, read_latency=read_latency,
                   write_latency=write_latency)
    )
    drv = sim.add(ManagerDriver(port))
    return sim, sram, drv


def finish(sim, drv, max_cycles=10_000):
    sim.run_until(lambda: drv.idle, max_cycles=max_cycles, what="driver")


def test_write_then_read_roundtrip():
    sim, sram, drv = make()
    payload = bytes(range(8))
    drv.write(0x100, payload)
    op = drv.read(0x100)
    finish(sim, drv)
    assert op.resp == Resp.OKAY
    assert op.rdata == payload


def test_burst_write_read_roundtrip():
    sim, sram, drv = make()
    payload = bytes(range(32))  # 4 beats x 8 B
    drv.write(0x200, payload, beats=4)
    op = drv.read(0x200, beats=4)
    finish(sim, drv)
    assert op.rdata == payload


def test_uninitialized_memory_reads_zero():
    sim, sram, drv = make()
    op = drv.read(0x0)
    finish(sim, drv)
    assert op.rdata == bytes(8)


def test_out_of_range_read_is_slverr():
    sim, sram, drv = make(size=0x100)
    op = drv.read(0x1000 - 8, beats=1)  # beyond the 0x100 window
    finish(sim, drv)
    assert op.resp == Resp.SLVERR


def test_read_latency_affects_completion():
    lat_fast = lat_slow = None
    for latency in (1, 10):
        sim, sram, drv = make(read_latency=latency)
        op = drv.read(0x0)
        finish(sim, drv)
        if latency == 1:
            lat_fast = op.latency
        else:
            lat_slow = op.latency
    assert lat_slow - lat_fast == 9


def test_burst_streams_one_beat_per_cycle():
    sim, sram, drv = make()
    op1 = drv.read(0x0, beats=1)
    op2 = drv.read(0x0, beats=64)
    finish(sim, drv)
    # The 64-beat burst takes ~63 more cycles than the single-beat read.
    assert op2.latency - op1.latency == 63


def test_fixed_burst_reads_same_address():
    sim, sram, drv = make()
    drv.write(0x40, bytes([0xAB] * 8))
    op = drv.read(0x40, beats=4, burst=BurstType.FIXED, size=3)
    finish(sim, drv)
    assert op.rdata == bytes([0xAB] * 8) * 4


def test_wrap_burst_roundtrip():
    sim, sram, drv = make()
    drv.write(0x100, bytes(range(32)), beats=4)
    op = drv.read(0x110, beats=4, burst=BurstType.WRAP)
    finish(sim, drv)
    # Beats: 0x110, 0x118, 0x100, 0x108
    assert op.rdata == bytes(range(32))[16:] + bytes(range(32))[:16]


def test_counters():
    sim, sram, drv = make()
    drv.write(0x0, bytes(8))
    drv.read(0x0)
    drv.read(0x0, beats=4)
    finish(sim, drv)
    assert sram.reads_served == 2
    assert sram.writes_served == 1
    assert sram.read_beats == 5
    assert sram.write_beats == 1


def test_negative_latency_rejected():
    sim = Simulator()
    port = AxiBundle(sim, "mem")
    with pytest.raises(ValueError):
        SramMemory(port, base=0, size=64, read_latency=-1)


def test_reads_and_writes_progress_concurrently():
    sim, sram, drv = make()
    # Interleave from two drivers on separate bundles is covered by the
    # crossbar tests; here just confirm r/w state machines are independent:
    # a long read burst does not block a write's completion forever.
    drv2 = sim.add(ManagerDriver(sram.port, name="drv2"))
    # NOTE: two drivers sharing one bundle is only safe because driver 1
    # only reads and driver 2 only writes.
    drv.read(0x0, beats=64)
    wop = drv2.write(0x80, bytes(8))
    finish(sim, drv)
    sim.run_until(lambda: drv2.idle, max_cycles=1000, what="writer")
    rop = drv.completed[0]
    assert wop.done_cycle < rop.done_cycle
