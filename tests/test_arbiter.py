"""Unit tests for arbiters."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interconnect import FixedPriorityArbiter, RoundRobinArbiter


def test_rr_rotates_among_active():
    arb = RoundRobinArbiter(3)
    grants = [arb.grant([True, True, True]) for _ in range(6)]
    assert grants == [0, 1, 2, 0, 1, 2]


def test_rr_skips_inactive():
    arb = RoundRobinArbiter(3)
    assert arb.grant([False, True, False]) == 1
    assert arb.grant([True, False, True]) == 2
    assert arb.grant([True, False, True]) == 0


def test_rr_none_when_no_requests():
    arb = RoundRobinArbiter(2)
    assert arb.grant([False, False]) is None


def test_rr_peek_does_not_advance():
    arb = RoundRobinArbiter(2)
    assert arb.peek([True, True]) == 0
    assert arb.peek([True, True]) == 0
    assert arb.grant([True, True]) == 0
    assert arb.peek([True, True]) == 1


def test_rr_reset():
    arb = RoundRobinArbiter(3)
    arb.grant([True, True, True])
    arb.reset()
    assert arb.grant([True, True, True]) == 0


def test_rr_wrong_width_raises():
    arb = RoundRobinArbiter(2)
    with pytest.raises(ValueError):
        arb.grant([True])


def test_rr_needs_positive_n():
    with pytest.raises(ValueError):
        RoundRobinArbiter(0)


def test_fixed_priority_lowest_wins():
    arb = FixedPriorityArbiter(3)
    assert arb.grant([False, True, True]) == 1
    assert arb.grant([False, True, True]) == 1  # no rotation


@settings(max_examples=100, deadline=None)
@given(st.lists(st.booleans(), min_size=1, max_size=8))
def test_property_rr_grants_only_active(requests):
    arb = RoundRobinArbiter(len(requests))
    g = arb.grant(requests)
    if any(requests):
        assert g is not None and requests[g]
    else:
        assert g is None


@settings(max_examples=50, deadline=None)
@given(n=st.integers(min_value=2, max_value=8), rounds=st.integers(1, 50))
def test_property_rr_is_fair_under_full_load(n, rounds):
    """With all requesters active, grant counts differ by at most one."""
    arb = RoundRobinArbiter(n)
    counts = [0] * n
    for _ in range(rounds):
        counts[arb.grant([True] * n)] += 1
    assert max(counts) - min(counts) <= 1
