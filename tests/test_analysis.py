"""Tests for stats helpers, interference monitoring, and the experiment
runner."""

import pytest

from repro.analysis import (
    ContentionExperiment,
    InterferenceMatrix,
    LatencyStats,
    SystemInterferenceMonitor,
    bytes_per_cycle,
    percentile,
    performance_percent,
)


# ----------------------------------------------------------------------
# stats
# ----------------------------------------------------------------------
def test_latency_stats_basic():
    stats = LatencyStats.from_samples([10, 20, 30, 40, 50])
    assert stats.count == 5
    assert stats.minimum == 10
    assert stats.maximum == 50
    assert stats.mean == 30
    assert stats.p50 == 30


def test_latency_stats_empty():
    stats = LatencyStats.from_samples([])
    assert stats.count == 0
    assert stats.maximum == 0


def test_percentile_interpolates():
    assert percentile([0, 10], 50) == 5.0
    assert percentile([1, 2, 3, 4], 100) == 4
    assert percentile([7], 99) == 7.0
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1], 101)


def test_performance_percent():
    assert performance_percent(100, 100) == 100.0
    assert performance_percent(100, 200) == 50.0
    # Zero cycles is a measurement, not a missing value: an instant run
    # against an instant baseline matches it, against a positive one it
    # is infinitely fast.  Only negative counts are rejected.
    assert performance_percent(0, 0) == 100.0
    assert performance_percent(100, 0) == float("inf")
    with pytest.raises(ValueError):
        performance_percent(-1, 100)
    with pytest.raises(ValueError):
        performance_percent(100, -1)


def test_bytes_per_cycle():
    assert bytes_per_cycle(100, 10) == 10.0
    assert bytes_per_cycle(100, 0) == 0.0


# ----------------------------------------------------------------------
# interference matrix
# ----------------------------------------------------------------------
def test_interference_matrix_records_victim_aggressor():
    m = InterferenceMatrix(["core", "dma"])
    m.record(stalled=[True, False], transferring=[False, True])
    m.record(stalled=[True, False], transferring=[False, True])
    assert m.cycles("core", "dma") == 2
    assert m.cycles("dma", "core") == 0
    assert m.total_for_victim("core") == 2


def test_interference_matrix_ignores_self():
    m = InterferenceMatrix(["a", "b"])
    m.record(stalled=[True, False], transferring=[True, False])
    assert m.cycles("a", "a") == 0


def test_interference_matrix_format():
    m = InterferenceMatrix(["core", "dma"])
    m.record(stalled=[True, False], transferring=[False, True])
    text = m.format()
    assert "core" in text and "dma" in text


def test_system_monitor_detects_dma_interference():
    """Under heavy contention, the monitor blames the DMA for core stalls."""
    from repro.sim import Simulator
    from repro.soc import CheshireSoC, DRAM_BASE, SPM_BASE
    from repro.traffic import CoreModel, DmaEngine, susan_like_trace

    sim = Simulator()
    soc = CheshireSoC(sim)
    soc.warm_llc(DRAM_BASE, 32 * 1024)
    monitor = SystemInterferenceMonitor(sim, soc.realm_units)
    trace = susan_like_trace(n_accesses=20, base=DRAM_BASE, footprint=8192)
    core = sim.add(CoreModel(soc.core_port, trace))
    sim.add(
        DmaEngine(soc.dma_port, src_base=DRAM_BASE + 8192, src_size=8192,
                  dst_base=SPM_BASE, dst_size=8192, burst_beats=256)
    )
    sim.run_until(lambda: core.done, max_cycles=100_000, what="core")
    assert monitor.matrix.cycles("core", "dma") > 0


# ----------------------------------------------------------------------
# experiment runner
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def small_experiment():
    exp = ContentionExperiment(n_accesses=40)
    exp.run_single_source()
    return exp


def test_single_source_baseline(small_experiment):
    base = small_experiment.run_single_source()
    assert base.perf_percent == 100.0
    assert base.latency.maximum <= 10  # paper: at most 8 + model epsilon


def test_uncontrolled_contention_collapses_performance(small_experiment):
    r = small_experiment.run_without_reservation()
    assert r.perf_percent < 30.0
    assert r.worst_case_latency > 250  # >= one full 256-beat burst


def test_fragmentation_one_recovers_performance(small_experiment):
    r = small_experiment.run(fragmentation=1)
    assert r.perf_percent > 60.0
    assert r.worst_case_latency < 20


def test_fragmentation_sweep_monotone_trend(small_experiment):
    results = small_experiment.sweep_fragmentation((256, 16, 1))
    perfs = [r.perf_percent for r in results]
    assert perfs[0] < perfs[1] < perfs[2]
    lats = [r.worst_case_latency for r in results]
    assert lats[0] > lats[1] > lats[2]


def test_budget_sweep_improves_with_skew(small_experiment):
    results = small_experiment.sweep_budget(ratios=(1, 5))
    assert results[-1].perf_percent >= results[0].perf_percent
    assert results[-1].perf_percent > 90.0


def test_result_fields(small_experiment):
    r = small_experiment.run(fragmentation=4, label="check")
    assert r.label == "check"
    assert r.execution_cycles > 0
    assert r.dma_bytes > 0
    assert r.sim_cycles >= r.execution_cycles
