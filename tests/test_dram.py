"""Unit tests for the banked DRAM model."""

import pytest

from repro.axi import AxiBundle, Resp
from repro.mem import DramModel, DramTiming
from repro.sim import Simulator
from repro.traffic.driver import ManagerDriver


def make(timing=None, size=1 << 20):
    sim = Simulator()
    port = AxiBundle(sim, "dram")
    dram = sim.add(
        DramModel(port, base=0, size=size, timing=timing or DramTiming())
    )
    drv = sim.add(ManagerDriver(port))
    return sim, dram, drv


def finish(sim, drv):
    sim.run_until(lambda: drv.idle, max_cycles=100_000, what="driver")


def test_write_read_roundtrip():
    sim, dram, drv = make()
    payload = bytes(range(64))
    drv.write(0x1000, payload, beats=8)
    op = drv.read(0x1000, beats=8)
    finish(sim, drv)
    assert op.resp == Resp.OKAY
    assert op.rdata == payload


def test_row_hit_faster_than_row_miss():
    timing = DramTiming(t_cas=4, t_rcd=10, t_rp=10, row_bytes=1024, n_banks=4)
    sim, dram, drv = make(timing)
    op_first = drv.read(0x0)  # bank idle: t_rcd + t_cas
    op_hit = drv.read(0x8)  # same row: t_cas
    # 4 banks x 1 KiB rows: +4 KiB hits the same bank, different row.
    op_conflict = drv.read(0x1000)  # row conflict: t_rp + t_rcd + t_cas
    finish(sim, drv)
    assert op_hit.latency < op_first.latency < op_conflict.latency
    assert op_conflict.latency - op_hit.latency == timing.t_rp + timing.t_rcd


def test_row_hit_miss_counters():
    timing = DramTiming(row_bytes=1024, n_banks=4)
    sim, dram, drv = make(timing)
    drv.read(0x0)
    drv.read(0x10)
    drv.read(0x1000)
    finish(sim, drv)
    assert dram.row_hits == 1
    assert dram.row_misses == 2


def test_banks_interleave_rows():
    timing = DramTiming(row_bytes=1024, n_banks=4)
    sim, dram, drv = make(timing)
    # Consecutive rows land in different banks; no conflict penalty.
    drv.read(0x0)
    op = drv.read(0x400)  # next row -> next bank, idle: t_rcd + t_cas
    finish(sim, drv)
    assert dram.row_misses == 2
    assert op.latency < (
        timing.t_rp + timing.t_rcd + timing.t_cas + 10
    )


def test_reads_and_writes_serialized():
    sim, dram, drv = make()
    op_r = drv.read(0x0, beats=32)
    op_w = drv.write(0x4000, None, beats=1)
    finish(sim, drv)
    assert op_w.done_cycle > op_r.done_cycle


def test_out_of_range_is_slverr():
    sim, dram, drv = make(size=0x1000)
    op = drv.read(0x10000)
    finish(sim, drv)
    assert op.resp == Resp.SLVERR


def test_bad_timing_rejected():
    with pytest.raises(ValueError):
        DramTiming(t_cas=-1)
    with pytest.raises(ValueError):
        DramTiming(n_banks=0)


def test_counters_served():
    sim, dram, drv = make()
    drv.read(0x0)
    drv.write(0x0, bytes(8))
    finish(sim, drv)
    assert dram.reads_served == 1
    assert dram.writes_served == 1
