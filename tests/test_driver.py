"""Unit tests for the scripted manager driver and AXI port bundles."""

import pytest

from repro.axi import AxiBundle, Resp
from repro.mem import SramMemory
from repro.sim import Simulator
from repro.traffic import ManagerDriver
from repro.traffic.driver import Op


def make():
    sim = Simulator()
    port = AxiBundle(sim, "p")
    sram = sim.add(SramMemory(port, base=0, size=0x1000))
    drv = sim.add(ManagerDriver(port))
    return sim, drv


def test_ops_complete_in_order():
    sim, drv = make()
    ops = [drv.read(i * 8) for i in range(4)]
    sim.run_until(lambda: drv.idle, max_cycles=1000, what="driver")
    done = [op.done_cycle for op in ops]
    assert done == sorted(done)
    assert drv.completed == ops


def test_pending_ops_counter():
    sim, drv = make()
    drv.read(0x0)
    drv.read(0x8)
    assert drv.pending_ops == 2
    sim.run_until(lambda: drv.idle, max_cycles=1000, what="driver")
    assert drv.pending_ops == 0


def test_latency_requires_completion():
    sim, drv = make()
    op = drv.read(0x0)
    with pytest.raises(RuntimeError):
        _ = op.latency
    sim.run_until(lambda: drv.idle, max_cycles=1000, what="driver")
    assert op.latency > 0


def test_write_without_data_is_timing_only():
    sim, drv = make()
    op = drv.write(0x0, None, beats=4)
    sim.run_until(lambda: drv.idle, max_cycles=1000, what="driver")
    assert op.resp == Resp.OKAY


def test_write_data_padded_to_beat():
    sim, drv = make()
    drv.write(0x0, b"ab", beats=1)  # 2 bytes into an 8-byte beat
    op = drv.read(0x0)
    sim.run_until(lambda: drv.idle, max_cycles=1000, what="driver")
    assert op.rdata == b"ab" + bytes(6)


def test_txn_tags_unique_and_monotonic():
    sim, drv = make()
    ops = [drv.read(0) for _ in range(3)]
    sim.run_until(lambda: drv.idle, max_cycles=1000, what="driver")
    tags = [op.txn for op in ops]
    assert tags == sorted(tags)
    assert len(set(tags)) == 3


def test_driver_reset():
    sim, drv = make()
    drv.read(0x0)
    drv.reset()
    assert drv.idle
    assert drv.completed == []


def test_bundle_idle_and_channel_groups():
    sim = Simulator()
    b = AxiBundle(sim, "b")
    assert b.idle()
    assert len(b.channels) == 5
    assert b.aw in b.request_channels
    assert b.r in b.response_channels
    b.ar.send(object())
    assert not b.idle()
