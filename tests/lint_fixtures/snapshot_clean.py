# repro: lint-treat-as realm/fixture.py
"""snapshot-coverage fixture: fully covered state, both idioms."""


class Covered:
    def __init__(self, depth: int) -> None:
        self.depth = depth          # config from a parameter: exempt
        self.count = 0
        self.backlog = []

    def reset(self) -> None:
        self.count = 0
        self.backlog.clear()

    def state_capture(self) -> dict:
        return {"count": self.count, "backlog": list(self.backlog)}

    def state_restore(self, state: dict) -> None:
        self.count = state["count"]
        self.backlog = list(state["backlog"])


class NameTable:
    """The getattr-over-a-name-table capture idiom is recognized."""

    _STATE_FIELDS = ("hits", "misses")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0

    def state_capture(self) -> dict:
        return {name: getattr(self, name) for name in self._STATE_FIELDS}

    def state_restore(self, state: dict) -> None:
        for name in self._STATE_FIELDS:
            setattr(self, name, state[name])
