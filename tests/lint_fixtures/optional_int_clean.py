# repro: lint-treat-as scenario/fixture.py
"""optional-int-truthiness fixture: explicit None checks everywhere."""

from typing import Optional


class PointOutcome:
    execution_cycles: Optional[int] = None


def summarize(outcome: PointOutcome, probe_value: Optional[int]) -> str:
    if probe_value is not None:
        return f"read {probe_value}"
    cycles = (outcome.execution_cycles
              if outcome.execution_cycles is not None else 1)
    return str(cycles)


def guarded(first: Optional[int]) -> int:
    # `x is not None and x > 0` never truth-tests the Optional itself.
    if first is not None and first > 0:
        return first
    return 0
