# repro: lint-treat-as traffic/fixture.py
"""phase-discipline fixture: reaching around the sanctioned seams."""


class PushyGenerator:
    def __init__(self, port, regfile_owner) -> None:
        self.port = port
        self.owner = regfile_owner

    def tick(self, cycle: int) -> None:
        beat = self._make_beat(cycle)
        ch = self.port.aw
        ch._queue.append(beat)         # mutation: must use send()
        if ch._pending:                # intra-cycle state: invisible
            ch._queue.pop()
        self.owner.regfile.write(0x10, 1, tid=7)  # knob seam bypass

    def _make_beat(self, cycle: int):
        return cycle
