# repro: lint-treat-as scenario/fixture.py
"""optional-int-truthiness fixture: a documented deliberate conflation."""

from typing import Optional


def progress_bar(remaining: Optional[int]) -> str:
    if remaining:  # repro: lint-ok[optional-int-truthiness] fixture: display-only; 0 and None both render as done
        return f"{remaining} left"
    return "done"
