# repro: lint-treat-as scenario/fixture.py
"""probe-path-literal fixture: typo'd control-plane paths."""

SAMPLES = [
    "realm.dma.regoin0.total_bytes",     # region typo'd
    "realm.dma.region0.totl_bytes",      # field typo'd
    "port.core.ax.sent",                 # no such AXI channel
    "driver.core.complete",              # field is 'completed'
]


def watch(probes):
    return probes.match("realm.dma.regoin0.*")  # glob with a typo'd prefix
