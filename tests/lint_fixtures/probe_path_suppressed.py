# repro: lint-treat-as scenario/fixture.py
"""probe-path-literal fixture: a negative-test literal, suppressed."""

BAD_ON_PURPOSE = "realm.dma.region0.no_such_field"  # repro: lint-ok[probe-path-literal] fixture: negative-test input for registry error handling
