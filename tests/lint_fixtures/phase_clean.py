# repro: lint-treat-as traffic/fixture.py
"""phase-discipline fixture: the sanctioned seams and the read-only
queue peek."""


class PoliteGenerator:
    def __init__(self, port, knobs) -> None:
        self.port = port
        self.knobs = knobs

    def tick(self, cycle: int) -> None:
        ch = self.port.aw
        if ch.can_send():
            ch.send(self._make_beat(cycle))
        backlog = len(ch._queue)       # read-only peek: sanctioned
        if backlog > 4:
            self.knobs.set("traffic.dma.enabled", False)

    def _make_beat(self, cycle: int):
        return cycle
