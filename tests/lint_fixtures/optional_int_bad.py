# repro: lint-treat-as scenario/fixture.py
"""optional-int-truthiness fixture: 0-conflating tests on Optional[int]."""

from typing import Optional


class PointOutcome:
    execution_cycles: Optional[int] = None


def summarize(outcome: PointOutcome, probe_value: Optional[int]) -> str:
    if probe_value:  # 0 is a legitimate probe reading
        return f"read {probe_value}"
    cycles = outcome.execution_cycles or 1  # cycle 0 is a real finish
    if not probe_value:
        return f"{cycles} (unread)"
    return str(cycles)


def pick(first: Optional[int], fallback: int) -> int:
    return first if first else fallback
