# repro: lint-treat-as sim/fixture.py
"""nondeterminism-sources fixture: suppressed identity-map use."""


def registration_index(components: list, target) -> int:
    table = {id(c): i for i, c in enumerate(components)}  # repro: lint-ok[nondeterminism-sources] fixture: identity map inside one pass, indices persisted
    return table[id(target)]  # repro: lint-ok[nondeterminism-sources] fixture: same identity map lookup
