# repro: lint-treat-as soc/fixture.py
"""obs-isolation fixture: a well-behaved state hook (no obs objects)."""


class TidyComponent:
    def __init__(self) -> None:
        self.count = 0
        self.window = 16

    def state_capture(self) -> dict:
        return {"count": self.count, "window": self.window}

    def state_restore(self, state: dict) -> None:
        self.count = state["count"]
        self.window = state["window"]
