# repro: lint-treat-as traffic/fixture.py
"""phase-discipline fixture: a reasoned suppression on a pending read."""


class InspectingGenerator:
    def __init__(self, port) -> None:
        self.port = port

    def tick(self, cycle: int) -> None:
        ch = self.port.aw
        stalled = bool(ch._pending)  # repro: lint-ok[phase-discipline] fixture: commit-boundary diagnostics only
        if stalled:
            return
