# repro: lint-treat-as realm/fixture.py
"""snapshot-coverage fixture: three distinct violation shapes."""


class MissingCapture:
    """Assigns state in reset but has no state_capture at all."""

    def __init__(self) -> None:
        self.count = 0

    def reset(self) -> None:
        self.count = 0
        self.backlog = []


class UncoveredAttr:
    """Has hooks, but `dropped` never appears in the capture body."""

    def __init__(self) -> None:
        self.kept = 0
        self.dropped = 0

    def reset(self) -> None:
        self.kept = 0
        self.dropped = 0

    def state_capture(self) -> dict:
        return {"kept": self.kept}

    def state_restore(self, state: dict) -> None:
        self.kept = state["kept"]


class AsymmetricKeys:
    """Capture emits 'extra'; restore consumes 'phantom' instead."""

    def __init__(self) -> None:
        self.extra = 0

    def state_capture(self) -> dict:
        return {"extra": self.extra}

    def state_restore(self, state: dict) -> None:
        self.extra = state["phantom"]
