# repro: lint-treat-as soc/fixture.py
"""obs-isolation fixture: a component smuggling the recorder into state."""


class LeakyComponent:
    def __init__(self, sim) -> None:
        self.sim = sim
        self.count = 0

    def state_capture(self) -> dict:
        from repro.obs import FlightRecorder
        recorder = self.sim._recorder
        return {
            "count": self.count,
            "recorder": recorder,
            "factory": FlightRecorder,
        }

    def state_restore(self, state: dict) -> None:
        self.count = state["count"]
        self.sim._recorder = state["recorder"]
        self.sim._rec_journal = None
