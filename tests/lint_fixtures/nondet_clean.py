# repro: lint-treat-as sim/fixture.py
"""nondeterminism-sources fixture: the sanctioned idioms."""

import random
import time


def profile(fn) -> float:
    start = time.perf_counter()  # profiling clocks are fine
    fn()
    return time.perf_counter() - start


def derive_stream(seed: int) -> list:
    rng = random.Random(seed)  # seeded instance: sanctioned
    return [rng.randrange(256) for _ in range(8)]


def walk_managers(managers: set) -> list:
    return [name for name in sorted(managers)]  # sorted set: fine
