# repro: lint-treat-as realm/fixture.py
"""codec-registration fixture: capture builds an unregistered type."""


class Scratchpad:
    """Not registered with the default StateCodec."""

    def __init__(self, words):
        self.words = words


class Holder:
    def __init__(self) -> None:
        self.pad_words = []

    def state_capture(self) -> dict:
        return {"pad": Scratchpad(list(self.pad_words))}

    def state_restore(self, state: dict) -> None:
        self.pad_words = list(state["pad"].words)
