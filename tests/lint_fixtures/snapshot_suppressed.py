# repro: lint-treat-as realm/fixture.py
"""snapshot-coverage fixture: violations silenced by reasoned
suppressions (same shapes as snapshot_bad.py)."""


# repro: lint-ok[snapshot-coverage] fixture: captured wholesale by its parent
class MissingCapture:
    def __init__(self) -> None:
        self.count = 0

    def reset(self) -> None:
        self.count = 0
        self.backlog = []


class UncoveredAttr:
    def __init__(self) -> None:
        self.kept = 0
        self.dropped = 0  # repro: lint-ok[snapshot-coverage] fixture: derived cache, rebuilt on restore

    def reset(self) -> None:
        self.kept = 0
        self.dropped = 0

    def state_capture(self) -> dict:
        return {"kept": self.kept}

    def state_restore(self, state: dict) -> None:
        self.kept = state["kept"]
