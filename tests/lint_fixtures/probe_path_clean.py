# repro: lint-treat-as scenario/fixture.py
"""probe-path-literal fixture: grammatical paths and patterns."""

SAMPLES = [
    "realm.dma.region0.total_bytes",
    "realm.any-manager_2.ctrl.regulation",
    "port.core.ar.sent",
    "noc.r1c0.occupancy",
    "mem.main.row_hits",
    "traffic.dma.enabled",
    "realm.*.region0.budget_remaining",  # pattern: literal prefix fits
    "port.core.*",
]

NOT_PATHS = [
    "realm",                 # no dot: ignored
    "memory.bandwidth",      # unknown root: ignored
    "e.g. this sentence",    # prose: ignored
]
