# repro: lint-treat-as realm/fixture.py
"""codec-registration fixture: registered types and raised errors are
both fine inside a capture body."""

from repro.axi.beats import AWBeat
from repro.snapshot.codec import SnapshotError


class Holder:
    def __init__(self) -> None:
        self.addr = 0

    def state_capture(self) -> dict:
        if self.addr < 0:
            raise SnapshotError("negative address")  # raised, not captured
        return {"beat": AWBeat(addr=self.addr, length=1, tid=0)}

    def state_restore(self, state: dict) -> None:
        self.addr = state["beat"].addr
