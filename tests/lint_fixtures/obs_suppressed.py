# repro: lint-treat-as soc/fixture.py
"""obs-isolation fixture: a reasoned suppression on a diagnostic read."""


class AuditingComponent:
    def __init__(self, sim) -> None:
        self.sim = sim
        self.count = 0

    def state_capture(self) -> dict:
        attached = self.sim._recorder is not None  # repro: lint-ok[obs-isolation] fixture: capture-time diagnostics, value never captured
        if attached:
            pass
        return {"count": self.count}

    def state_restore(self, state: dict) -> None:
        self.count = state["count"]
