# repro: lint-treat-as sim/fixture.py
"""nondeterminism-sources fixture: every banned entropy source."""

import os
import random
import time
from datetime import datetime


def stamp_report(report: dict) -> dict:
    report["at"] = time.time()
    report["when"] = datetime.now()
    return report


def make_seed() -> int:
    return int.from_bytes(os.urandom(4), "big")


def shuffle_points(points: list) -> list:
    random.shuffle(points)
    rng = random.Random()
    return sorted(points, key=lambda _: rng.random())


def digest_key(obj) -> int:
    return id(obj)


def walk_managers(managers: set) -> list:
    out = []
    for name in {"core", "dma"}:
        out.append(name)
    return out + [m for m in set(managers)]
