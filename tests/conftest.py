"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.axi import AxiBundle
from repro.interconnect import AddressMap, AxiCrossbar
from repro.mem import SramMemory
from repro.sim import Simulator
from repro.traffic.driver import ManagerDriver


@pytest.fixture
def sim():
    return Simulator()


def build_simple_system(
    sim: Simulator,
    n_managers: int = 2,
    sram_size: int = 0x1000,
    read_latency: int = 1,
    write_latency: int = 1,
):
    """One SRAM behind a crossbar, driven by *n_managers* scripted drivers.

    Returns ``(drivers, crossbar, sram)``.  The SRAM occupies
    ``[0x0, sram_size)``; everything above decodes to DECERR.
    """
    mgr_ports = [AxiBundle(sim, f"m{i}") for i in range(n_managers)]
    sub_port = AxiBundle(sim, "s0")
    amap = AddressMap()
    amap.add_range(0x0, sram_size, port=0, name="sram")
    xbar = sim.add(AxiCrossbar(mgr_ports, [sub_port], amap))
    sram = sim.add(
        SramMemory(
            sub_port,
            base=0x0,
            size=sram_size,
            read_latency=read_latency,
            write_latency=write_latency,
        )
    )
    drivers = [
        sim.add(ManagerDriver(mgr_ports[i], name=f"drv{i}"))
        for i in range(n_managers)
    ]
    return drivers, xbar, sram


def build_realm_system(
    sim: Simulator,
    params=None,
    sram_size: int = 0x10000,
    read_latency: int = 1,
    write_latency: int = 1,
):
    """driver -> REALM unit -> SRAM (no crossbar): the unit under test.

    Returns ``(driver, realm, sram)``.
    """
    from repro.realm import RealmUnit, RealmUnitParams

    up = AxiBundle(sim, "mgr")
    down = AxiBundle(sim, "mem")
    realm = sim.add(
        RealmUnit(up, down, params=params or RealmUnitParams(), name="realm0")
    )
    sram = sim.add(
        SramMemory(
            down,
            base=0x0,
            size=sram_size,
            read_latency=read_latency,
            write_latency=write_latency,
        )
    )
    driver = sim.add(ManagerDriver(up, name="drv"))
    return driver, realm, sram


def run_all(sim: Simulator, drivers, max_cycles: int = 100_000):
    """Run until every driver's script has completed."""
    sim.run_until(
        lambda: all(d.idle for d in drivers),
        max_cycles=max_cycles,
        what="drivers to finish",
    )
