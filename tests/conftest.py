"""Shared fixtures for the test suite.

Importable helpers (system recipes) live in ``tests/helpers.py`` — see the
note there about why they must not live in a ``conftest.py``.
"""

from __future__ import annotations

import pytest

from repro.sim import Simulator


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="re-record tests/golden/*.json from the current simulation "
        "(the naive-kernel runs still assert against the fresh goldens, "
        "so cycle-identity is verified during the update)",
    )


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def naive_sim():
    """The pre-refactor tick-everything kernel, for equivalence checks."""
    return Simulator(active_set=False)
