"""Property-based fairness tests for the crossbar and its arbiters.

The round-robin arbiter is what stands between a well-behaved manager
and starvation (before REALM regulation even enters the picture), so
its fairness contract is checked under randomized request patterns:

* grants only go to requesters, and some request always wins (work
  conservation);
* between managers that request continuously, grant counts never drift
  apart by more than one (strict round-robin fairness);
* two symmetric aggressors through a real crossbar split a subordinate's
  bandwidth equally (system-level fairness).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interconnect.arbiter import FixedPriorityArbiter, RoundRobinArbiter
from repro.sim import Simulator
from repro.system import SystemBuilder
from repro.traffic import BandwidthHog


# ----------------------------------------------------------------------
# round-robin arbiter
# ----------------------------------------------------------------------
@settings(max_examples=100, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=6),
    data=st.data(),
)
def test_property_rr_grants_only_requesters_and_is_work_conserving(n, data):
    arb = RoundRobinArbiter(n)
    steps = data.draw(
        st.lists(st.lists(st.booleans(), min_size=n, max_size=n),
                 min_size=1, max_size=40)
    )
    for requests in steps:
        granted = arb.grant(requests)
        if any(requests):
            assert granted is not None, "work conservation violated"
            assert requests[granted], "granted a non-requester"
        else:
            assert granted is None


@settings(max_examples=100, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=6),
    hot=st.data(),
)
def test_property_rr_continuous_requesters_stay_within_one_grant(n, hot):
    """Any set of always-requesting managers shares grants evenly (max
    spread 1), regardless of what the other request lines do."""
    arb = RoundRobinArbiter(n)
    always = hot.draw(
        st.sets(st.integers(min_value=0, max_value=n - 1), min_size=2,
                max_size=n)
    )
    noise = hot.draw(
        st.lists(st.lists(st.booleans(), min_size=n, max_size=n),
                 min_size=10, max_size=60)
    )
    counts = {i: 0 for i in always}
    for pattern in noise:
        requests = [bool(v) or (i in always) for i, v in enumerate(pattern)]
        granted = arb.grant(requests)
        if granted in counts:
            counts[granted] += 1
    spread = max(counts.values()) - min(counts.values())
    assert spread <= 1, f"unfair grant spread {spread}: {counts}"


@settings(max_examples=50, deadline=None)
@given(n=st.integers(min_value=2, max_value=6),
       rounds=st.integers(min_value=1, max_value=5))
def test_property_rr_full_contention_is_exactly_even(n, rounds):
    arb = RoundRobinArbiter(n)
    counts = [0] * n
    for _ in range(rounds * n):
        counts[arb.grant([True] * n)] += 1
    assert counts == [rounds] * n


@settings(max_examples=50, deadline=None)
@given(n=st.integers(min_value=1, max_value=6), data=st.data())
def test_property_fixed_priority_always_prefers_lowest(n, data):
    arb = FixedPriorityArbiter(n)
    requests = data.draw(st.lists(st.booleans(), min_size=n, max_size=n))
    granted = arb.grant(requests)
    if any(requests):
        assert granted == requests.index(True)
    else:
        assert granted is None


# ----------------------------------------------------------------------
# crossbar-level fairness
# ----------------------------------------------------------------------
@settings(max_examples=10, deadline=None)
@given(
    beats=st.sampled_from([4, 8, 16]),
    read_latency=st.sampled_from([1, 4]),
    horizon=st.sampled_from([3000, 6000]),
)
def test_property_symmetric_hogs_split_bandwidth_evenly(
    beats, read_latency, horizon
):
    """Two identical saturating readers behind the crossbar get the same
    throughput to within one burst (round-robin at burst granularity)."""
    sim = Simulator()
    builder = SystemBuilder(sim).with_crossbar()
    builder.add_manager("a").add_manager("b")
    builder.add_sram("mem", base=0, size=0x10000,
                     read_latency=read_latency, capacity=4)
    system = builder.build()
    hogs = [
        system.attach(
            name,
            lambda port: BandwidthHog(port, target_base=0, window=0x8000,
                                      beats=beats),
        )
        for name in ("a", "b")
    ]
    sim.run(horizon)
    stolen = [hog.bytes_stolen for hog in hogs]
    assert min(stolen) > 0, "a manager starved outright"
    burst_bytes = beats * 8
    assert abs(stolen[0] - stolen[1]) <= burst_bytes, (
        f"unfair split under symmetric load: {stolen}"
    )
