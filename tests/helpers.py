"""Importable test helpers (shared system recipes).

Lives outside ``conftest.py`` on purpose: pytest imports every
``conftest.py`` under a single ``conftest`` module name, so helpers that
tests import *by name* must not live there (``benchmarks/conftest.py``
used to shadow ``tests/conftest.py`` and break collection).

All recipes build through :class:`repro.system.SystemBuilder`.
"""

from __future__ import annotations

from repro.sim import Simulator
from repro.system import SystemBuilder


def build_simple_system(
    sim: Simulator,
    n_managers: int = 2,
    sram_size: int = 0x1000,
    read_latency: int = 1,
    write_latency: int = 1,
):
    """One SRAM behind a crossbar, driven by *n_managers* scripted drivers.

    Returns ``(drivers, crossbar, sram)``.  The SRAM occupies
    ``[0x0, sram_size)``; everything above decodes to DECERR.
    """
    builder = SystemBuilder(sim).with_crossbar()
    for i in range(n_managers):
        builder.add_manager(f"m{i}", driver=f"drv{i}")
    builder.add_sram(
        "sram",
        base=0x0,
        size=sram_size,
        read_latency=read_latency,
        write_latency=write_latency,
    )
    system = builder.build()
    return list(system.drivers.values()), system.interconnect, system.memory("sram")


def build_realm_system(
    sim: Simulator,
    params=None,
    sram_size: int = 0x10000,
    read_latency: int = 1,
    write_latency: int = 1,
):
    """driver -> REALM unit -> SRAM (no crossbar): the unit under test.

    Returns ``(driver, realm, sram)``.
    """
    from repro.realm import RealmUnitParams

    system = (
        SystemBuilder(sim)
        .with_direct()
        .add_manager("mgr", protect=True,
                     realm_params=params or RealmUnitParams(), driver="drv")
        .add_sram(
            "mem",
            base=0x0,
            size=sram_size,
            read_latency=read_latency,
            write_latency=write_latency,
        )
        .build()
    )
    return system.driver("mgr"), system.realm("mgr"), system.memory("mem")


def run_all(sim: Simulator, drivers, max_cycles: int = 100_000):
    """Run until every driver's script has completed."""
    sim.run_until(
        lambda: all(d.idle for d in drivers),
        max_cycles=max_cycles,
        what="drivers to finish",
    )
