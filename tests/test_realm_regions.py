"""Unit tests for subordinate regions (budget/period credit machinery)."""

from repro.realm import UNLIMITED, RegionConfig, RegionState


def make(budget=1024, period=100, base=0, size=0x1000):
    return RegionState(RegionConfig(base, size, budget, period))


def test_matches_address_range():
    cfg = RegionConfig(base=0x1000, size=0x100)
    assert cfg.matches(0x1000)
    assert cfg.matches(0x10FF)
    assert not cfg.matches(0x1100)
    assert not cfg.matches(0xFFF)


def test_zero_size_region_disabled():
    cfg = RegionConfig(base=0, size=0)
    assert not cfg.matches(0)


def test_charge_and_depletion():
    state = make(budget=100)
    state.charge(60)
    assert not state.depleted
    assert state.remaining == 40
    state.charge(50)  # overshoot by one fragment is allowed
    assert state.depleted
    assert state.remaining == -10


def test_replenish_on_period_boundary():
    state = make(budget=10, period=5)
    state.charge(10)
    assert state.depleted
    rolled = [state.advance_cycle() for _ in range(5)]
    assert rolled == [False] * 4 + [True]
    assert not state.depleted
    assert state.remaining == 10
    assert state.periods_elapsed == 1


def test_budget_fraction():
    state = make(budget=100)
    assert state.budget_fraction == 1.0
    state.charge(25)
    assert state.budget_fraction == 0.75
    state.charge(100)
    assert state.budget_fraction == 0.0


def test_unlimited_budget_never_depletes():
    state = RegionState(RegionConfig(0, 0x1000))
    state.charge(1 << 40)
    assert not state.depleted
    assert state.remaining > 0
    assert UNLIMITED > 1 << 60


def test_reconfigure_resets_credits():
    state = make(budget=10, period=5)
    state.charge(10)
    state.reconfigure(RegionConfig(0, 0x1000, 50, 10))
    assert state.remaining == 50
    assert state.cycles_into_period == 0
    assert state.periods_elapsed == 0


def test_reset():
    state = make(budget=10, period=5)
    state.charge(3)
    state.advance_cycle()
    state.reset()
    assert state.remaining == 10
    assert state.cycles_into_period == 0
