"""The lint framework: rules, suppressions, CLI, and the CI gate.

Four layers of coverage:

* golden finding lists for every ``*_bad.py`` fixture (each shipped
  rule has a failing fixture proving it fires);
* clean and suppressed fixtures lint to zero findings;
* the tier-1 meta-test: ``repro lint src/repro`` reports zero findings
  (the CI gate, run in-process);
* the mutation acceptance test: deleting any one ``state_capture`` key
  from ``RealmUnit`` makes snapshot-coverage fail.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path

import pytest

from repro.control.paths import check_dotted_path, validate_path
from repro.lint import all_rules, lint_paths, lint_source
from repro.lint.cli import main as lint_main
from repro.lint.rules import RULE_CLASSES, rule_ids
from repro.lint.rules.snapshot import SnapshotCoverageRule

REPO = Path(__file__).resolve().parent.parent
FIXTURES = REPO / "tests" / "lint_fixtures"
SRC = REPO / "src" / "repro"


def lint_fixture(name: str):
    return lint_paths([str(FIXTURES / name)], all_rules())


# ----------------------------------------------------------------------
# golden finding lists: every rule fires on its bad fixture
# ----------------------------------------------------------------------
GOLDEN = {
    "snapshot_bad.py": [
        ("snapshot-coverage", 5),    # MissingCapture: no state_capture
        ("snapshot-coverage", 21),   # UncoveredAttr.dropped
        ("snapshot-coverage", 43),   # emits 'extra', never consumed
        ("snapshot-coverage", 43),   # consumes 'phantom', never emitted
    ],
    "codec_bad.py": [
        ("codec-registration", 17),  # Scratchpad(...) unregistered
    ],
    "nondet_bad.py": [
        ("nondeterminism-sources", 11),  # time.time
        ("nondeterminism-sources", 12),  # datetime.now
        ("nondeterminism-sources", 17),  # os.urandom
        ("nondeterminism-sources", 21),  # random.shuffle (global RNG)
        ("nondeterminism-sources", 22),  # unseeded random.Random()
        ("nondeterminism-sources", 27),  # id()
        ("nondeterminism-sources", 32),  # set-literal iteration
        ("nondeterminism-sources", 34),  # set(...) iteration
    ],
    "optional_int_bad.py": [
        ("optional-int-truthiness", 12),  # if probe_value:
        ("optional-int-truthiness", 14),  # execution_cycles or 1
        ("optional-int-truthiness", 15),  # if not probe_value:
        ("optional-int-truthiness", 21),  # first if first else ...
    ],
    "phase_bad.py": [
        ("phase-discipline", 13),  # _queue.append
        ("phase-discipline", 14),  # _pending read
        ("phase-discipline", 15),  # _queue.pop
        ("phase-discipline", 16),  # .regfile poke
    ],
    "obs_bad.py": [
        ("obs-isolation", 11),  # repro.obs import inside state_capture
        ("obs-isolation", 12),  # sim._recorder read
        ("obs-isolation", 16),  # FlightRecorder() constructed
        ("obs-isolation", 21),  # sim._recorder write in state_restore
        ("obs-isolation", 22),  # sim._rec_journal write
    ],
    "probe_path_bad.py": [
        ("probe-path-literal", 5),   # regoin0
        ("probe-path-literal", 6),   # totl_bytes
        ("probe-path-literal", 7),   # port channel 'ax'
        ("probe-path-literal", 8),   # driver field 'complete'
        ("probe-path-literal", 13),  # typo'd glob prefix
    ],
}


@pytest.mark.parametrize("fixture", sorted(GOLDEN))
def test_bad_fixture_golden_findings(fixture):
    findings = lint_fixture(fixture)
    assert [(f.rule, f.line) for f in findings] == GOLDEN[fixture]


def test_every_shipped_rule_has_a_failing_fixture():
    fired = {rule for findings in map(lint_fixture, GOLDEN)
             for rule in {f.rule for f in findings}}
    assert fired == set(rule_ids())


@pytest.mark.parametrize("fixture", [
    "snapshot_clean.py", "codec_clean.py", "nondet_clean.py",
    "optional_int_clean.py", "phase_clean.py", "probe_path_clean.py",
    "obs_clean.py",
])
def test_clean_fixture_has_no_findings(fixture):
    assert lint_fixture(fixture) == []


@pytest.mark.parametrize("fixture", [
    "snapshot_suppressed.py", "nondet_suppressed.py",
    "optional_int_suppressed.py", "phase_suppressed.py",
    "probe_path_suppressed.py", "obs_suppressed.py",
])
def test_suppressed_fixture_has_no_findings(fixture):
    assert lint_fixture(fixture) == []


# ----------------------------------------------------------------------
# suppression mechanics
# ----------------------------------------------------------------------
def test_suppression_without_reason_is_a_finding():
    findings = lint_source(
        "import time\n"
        "t = time.time()  # repro: lint-ok[nondeterminism-sources]\n",
        all_rules(), subpath="sim/x.py",
    )
    rules = [f.rule for f in findings]
    assert "bad-suppression" in rules
    assert "nondeterminism-sources" in rules  # reasonless: not honored


def test_suppression_only_silences_named_rule():
    findings = lint_source(
        "import time\n"
        "t = time.time()  # repro: lint-ok[phase-discipline] wrong rule\n",
        all_rules(), subpath="sim/x.py",
    )
    assert [f.rule for f in findings] == ["nondeterminism-sources"]


def test_comment_line_suppression_covers_next_code_line():
    findings = lint_source(
        "import time\n"
        "# repro: lint-ok[nondeterminism-sources] bench-only module\n"
        "t = time.time()\n",
        all_rules(), subpath="sim/x.py",
    )
    assert findings == []


def test_unknown_directive_is_a_finding():
    findings = lint_source(
        "x = 1  # repro: lint-allow[foo] not a directive we have\n",
        all_rules(), subpath="sim/x.py",
    )
    assert [f.rule for f in findings] == ["bad-suppression"]


# ----------------------------------------------------------------------
# the CI gate, in-process
# ----------------------------------------------------------------------
def test_repro_src_lints_clean():
    assert lint_paths([str(SRC)], all_rules()) == []


# ----------------------------------------------------------------------
# mutation acceptance: every RealmUnit state_capture key is load-bearing
# ----------------------------------------------------------------------
def _realm_unit_capture_entries():
    source = (SRC / "realm" / "unit.py").read_text(encoding="utf-8")
    tree = ast.parse(source)
    unit = next(
        node for node in ast.walk(tree)
        if isinstance(node, ast.ClassDef) and node.name == "RealmUnit"
    )
    capture = next(
        stmt for stmt in unit.body
        if isinstance(stmt, ast.FunctionDef)
        and stmt.name == "state_capture"
    )
    returned = next(
        node.value for node in ast.walk(capture)
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Dict)
    )
    return source, [
        (key.value, key.lineno, value.end_lineno)
        for key, value in zip(returned.keys, returned.values)
    ]


_SOURCE, _ENTRIES = _realm_unit_capture_entries()


@pytest.mark.parametrize("key,start,end", _ENTRIES,
                         ids=[e[0] for e in _ENTRIES])
def test_deleting_any_realm_unit_capture_key_fails_lint(key, start, end):
    lines = _SOURCE.splitlines(keepends=True)
    mutated = "".join(lines[:start - 1] + lines[end:])
    findings = lint_source(mutated, [SnapshotCoverageRule()],
                           filename="realm/unit.py", subpath="realm/unit.py")
    hits = [f for f in findings
            if f.rule == "snapshot-coverage" and key in f.message]
    assert hits, f"deleting capture key {key!r} went undetected"


def test_realm_unit_capture_has_expected_shape():
    keys = [entry[0] for entry in _ENTRIES]
    assert len(keys) == len(set(keys))
    assert "cycle" in keys and "mr" in keys


# ----------------------------------------------------------------------
# CLI exit codes and JSON report
# ----------------------------------------------------------------------
def test_cli_exit_codes(tmp_path, capsys):
    assert lint_main([str(FIXTURES / "snapshot_clean.py")]) == 0
    assert lint_main([str(FIXTURES / "snapshot_bad.py")]) == 1
    capsys.readouterr()
    assert lint_main(["--rule", "no-such-rule",
                      str(FIXTURES / "snapshot_bad.py")]) == 2
    broken = tmp_path / "broken.py"
    broken.write_text("def (:\n")
    assert lint_main([str(broken)]) == 2


def test_cli_rule_filter(capsys):
    code = lint_main(["--rule", "probe-path-literal",
                      str(FIXTURES / "snapshot_bad.py")])
    capsys.readouterr()
    assert code == 0  # snapshot findings filtered out


def test_cli_json_report(tmp_path, capsys):
    out = tmp_path / "report.json"
    code = lint_main(["--json", str(out),
                      str(FIXTURES / "probe_path_bad.py")])
    capsys.readouterr()
    assert code == 1
    payload = json.loads(out.read_text())
    assert payload["files_checked"] == 1
    assert {f["rule"] for f in payload["findings"]} == {"probe-path-literal"}
    assert {r["id"] for r in payload["rules"]} == set(rule_ids())
    finding = payload["findings"][0]
    assert set(finding) == {"rule", "path", "line", "col", "message"}


def test_main_cli_has_lint_subcommand():
    from repro.cli import main as repro_main

    assert repro_main(["lint", str(FIXTURES / "snapshot_clean.py")]) == 0
    assert repro_main(["lint", str(FIXTURES / "snapshot_bad.py")]) == 1


# ----------------------------------------------------------------------
# the shared path grammar (single source of truth)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("path", [
    "realm.dma.region0.total_bytes",
    "realm.dma.ctrl.regulation",
    "realm.dma.granularity",
    "port.core.ar.sent",
    "xbar.aw_forwarded",
    "xbar.core.qos",
    "noc.r1c0.occupancy",
    "noc.flits",
    "mem.main.row_hits",
    "cache.llc.hits",
    "traffic.dma.enabled",
    "driver.core.completed",
])
def test_grammar_accepts_published_shapes(path):
    assert validate_path(path) is None


@pytest.mark.parametrize("path", [
    "realm.dma.regoin0.total_bytes",
    "realm.dma.region0.totl_bytes",
    "port.core.ax.sent",
    "noc.r1x0.occupancy",
    "driver.core.complete",
    "bogus.root",
    "realm.dma",
    "realm.dma.region0.total_bytes.extra",
])
def test_grammar_rejects_misshapen_paths(path):
    assert validate_path(path) is not None


def test_grammar_patterns_check_literal_prefix():
    assert validate_path("realm.dma.region0.*", pattern=True) is None
    assert validate_path("realm.*", pattern=True) is None
    assert validate_path("realm.dma.regoin0.*", pattern=True) is not None
    assert validate_path("realm.dma.region0.*") is not None  # not a knob


def test_registries_share_the_charset_check():
    from repro.control import knobs, probes

    assert probes.check_dotted_path is check_dotted_path
    assert knobs.check_dotted_path is check_dotted_path
    with pytest.raises(KeyError):
        check_dotted_path("bad..path", KeyError, "probe")


def test_rule_registry_is_well_formed():
    ids = rule_ids()
    assert len(ids) == len(set(ids)) == len(RULE_CLASSES) >= 6
    for rule in all_rules():
        assert rule.id and rule.description
