"""Fork-point campaign execution: shared-prefix detection, bit-identical
results vs scratch runs (sequential and across the process pool), and
conservative fallback whenever a shared prefix is not provable."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.scenario import (
    apply_smoke,
    expand,
    load_file,
    plan_fork,
    run_campaign,
)
from repro.scenario.spec import validate

SCENARIO_DIR = Path(__file__).resolve().parent.parent / "scenarios"


def _forkable_tree(**overrides):
    """A small until-run campaign whose only divergence is the budget a
    schedule rule writes at cycle 400."""
    tree = {
        "scenario": {"name": "forky", "seed": 11},
        "run": {"until": ["core"], "max_cycles": 200_000},
        "topology": {
            "managers": [
                {
                    "name": "core",
                    "protect": True,
                    "granularity": 16,
                    "regions": [
                        {"base": 0x0, "size": 0x1_0000,
                         "budget_bytes": "unlimited",
                         "period_cycles": "unlimited"},
                    ],
                },
                {
                    "name": "dma",
                    "protect": True,
                    "granularity": 64,
                    "regions": [
                        {"base": 0x0, "size": 0x1_0000,
                         "budget_bytes": "unlimited",
                         "period_cycles": "unlimited"},
                    ],
                },
            ],
            "memories": [
                {"name": "mem", "kind": "sram", "base": 0x0,
                 "size": 0x1_0000},
            ],
        },
        "traffic": {
            "core": {"kind": "core", "pattern": "susan", "n_accesses": 80,
                     "base": 0x0, "footprint": 0x2000, "gap_mean": 2,
                     "beats": 2, "seed": 21},
            "dma": {"kind": "dma", "src_base": 0x0, "src_size": 0x4000,
                    "dst_base": 0x8000, "dst_size": 0x4000,
                    "burst_beats": 128},
        },
        "schedule": [
            {
                "label": "cut",
                "at": 400,
                "set": {"realm.dma.region0.budget_bytes": 4096,
                        "realm.dma.region0.period_cycles": 500},
            },
        ],
        "campaign": {
            "sweep": [
                {"field":
                 "schedule.cut.set.realm.dma.region0.budget_bytes",
                 "values": [256, 2048, 1 << 40]},
            ],
        },
    }
    tree.update(overrides)
    return tree


# ----------------------------------------------------------------------
# plan detection
# ----------------------------------------------------------------------
def test_plan_detects_schedule_value_divergence():
    plan = plan_fork(expand(validate(_forkable_tree())))
    assert plan is not None
    assert plan.fork_cycle == 400
    assert all(path.startswith("schedule.0.set.") for path in plan.divergent)


def test_plan_uses_earliest_divergent_firing():
    tree = _forkable_tree()
    tree["schedule"].append({
        "label": "early",
        "every": 150,
        "set": {"traffic.dma.inter_burst_gap": 0},
    })
    tree["campaign"]["sweep"].append({
        "field": "schedule.early.set.traffic.dma.inter_burst_gap",
        "values": [0, 32],
    })
    plan = plan_fork(expand(validate(tree)))
    assert plan is not None
    assert plan.fork_cycle == 150  # first firing of the periodic rule


def test_plan_refuses_topology_and_trigger_divergence():
    # Shipped fig6a sweeps the splitter granularity: topology diverges
    # at cycle 0, so no fork is provable.
    fig6a = apply_smoke(load_file(SCENARIO_DIR / "fig6a.toml"))
    assert plan_fork(expand(fig6a)) is None

    # Divergent rule *triggers* (not just values) refuse too.
    tree = _forkable_tree()
    tree["campaign"] = {
        "points": [
            {"label": "a", "set": {"schedule.cut.at": 400}},
            {"label": "b", "set": {"schedule.cut.at": 800}},
        ],
    }
    assert plan_fork(expand(validate(tree))) is None

    # Divergent rule presence (enabled flag) refuses.
    tree = _forkable_tree()
    tree["campaign"] = {
        "points": [
            {"label": "a", "set": {"schedule.cut.enabled": False}},
            {"label": "b"},
        ],
    }
    assert plan_fork(expand(validate(tree))) is None


def test_plan_refuses_event_triggered_divergence():
    tree = _forkable_tree()
    tree["schedule"][0] = {
        "label": "cut",
        "when": "realm.dma.region0.total_bytes >= 1",
        "set": {"realm.dma.region0.budget_bytes": 4096},
    }
    assert plan_fork(expand(validate(tree))) is None


# ----------------------------------------------------------------------
# execution equivalence
# ----------------------------------------------------------------------
def test_fork_matches_scratch_bit_for_bit():
    spec = validate(_forkable_tree())
    scratch = run_campaign(spec)
    forked = run_campaign(spec, fork=True)
    assert forked.fork_cycle == 400
    assert forked.digest() == scratch.digest()
    assert [p.to_dict() for p in forked.points] == [
        p.to_dict() for p in scratch.points
    ]
    # The sweep diverges for real (not all points equal).
    assert len({p.execution_cycles for p in scratch.points}) > 1
    # Reports stay byte-identical between the two execution modes.
    assert forked.to_json_dict() == scratch.to_json_dict()


def test_fork_over_process_pool_matches_sequential():
    spec = validate(_forkable_tree())
    sequential = run_campaign(spec, fork=True)
    pooled = run_campaign(spec, fork=True, jobs=2)
    assert pooled.digest() == sequential.digest()


def test_fork_on_both_kernels_and_datapaths():
    spec = validate(_forkable_tree())
    reference = run_campaign(spec).digest()
    for active_set in (True, False):
        for batched in (True, False):
            forked = run_campaign(
                spec, fork=True, active_set=active_set, batched=batched
            )
            assert forked.digest() == reference, (
                f"fork drifted with active_set={active_set} "
                f"batched={batched}"
            )


def test_fork_when_the_run_finishes_before_the_fork_cycle():
    # The divergent rule fires long after the traffic completes: the
    # prefix stops at the run's own end and every fork finishes
    # immediately, exactly like its scratch run.
    tree = _forkable_tree()
    tree["schedule"][0]["at"] = 150_000
    spec = validate(tree)
    scratch = run_campaign(spec)
    forked = run_campaign(spec, fork=True)
    assert forked.digest() == scratch.digest()
    assert all(
        p.sim_cycles < 150_000 for p in forked.points
    ), "the run should have completed well before the fork cycle"


def test_fork_fallback_is_silent_for_unforkable_campaigns():
    fig6a = apply_smoke(load_file(SCENARIO_DIR / "fig6a.toml"))
    scratch = run_campaign(fig6a)
    forked = run_campaign(fig6a, fork=True)
    assert forked.fork_cycle is None
    assert forked.digest() == scratch.digest()
