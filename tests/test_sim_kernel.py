"""Unit tests for the simulation kernel."""

import pytest

from repro.sim import Channel, Component, SimulationError, Simulator


class Counter(Component):
    def __init__(self):
        super().__init__("counter")
        self.ticks = 0
        self.seen_cycles = []

    def tick(self, cycle):
        self.ticks += 1
        self.seen_cycles.append(cycle)

    def reset(self):
        self.ticks = 0
        self.seen_cycles = []


def test_run_advances_cycle():
    sim = Simulator()
    assert sim.run(10) == 10
    assert sim.cycle == 10


def test_components_tick_once_per_cycle():
    sim = Simulator()
    c = sim.add(Counter())
    sim.run(5)
    assert c.ticks == 5
    assert c.seen_cycles == [0, 1, 2, 3, 4]


def test_adding_component_twice_raises():
    sim = Simulator()
    c = Counter()
    sim.add(c)
    with pytest.raises(SimulationError):
        sim.add(c)


def test_run_until_returns_cycle_condition_became_true():
    sim = Simulator()
    c = sim.add(Counter())
    cycle = sim.run_until(lambda: c.ticks >= 7)
    assert cycle == 7
    assert c.ticks == 7


def test_run_until_timeout_raises():
    sim = Simulator()
    with pytest.raises(SimulationError, match="timeout"):
        sim.run_until(lambda: False, max_cycles=10, what="never")


def test_reset_restores_components_and_clock():
    sim = Simulator()
    c = sim.add(Counter())
    sim.run(3)
    sim.reset()
    assert sim.cycle == 0
    assert c.ticks == 0


def test_watchers_run_after_commit():
    sim = Simulator()
    seen = []
    sim.add_watcher(lambda cyc: seen.append(cyc))
    sim.run(3)
    assert seen == [0, 1, 2]


def test_find_component_by_name():
    sim = Simulator()
    c = sim.add(Counter())
    assert sim.find("counter") is c
    assert sim.find("nope") is None


def test_channel_registered_with_simulator_commits():
    sim = Simulator()
    ch = Channel(sim, "x")
    ch.send(1)
    assert not ch.can_recv()  # not committed yet
    sim.step()
    assert ch.can_recv()
