"""Unit tests for the simulation kernel."""

import pytest

from repro.sim import Channel, Component, SimulationError, Simulator


class Counter(Component):
    def __init__(self):
        super().__init__("counter")
        self.ticks = 0
        self.seen_cycles = []

    def tick(self, cycle):
        self.ticks += 1
        self.seen_cycles.append(cycle)

    def reset(self):
        self.ticks = 0
        self.seen_cycles = []


def test_run_advances_cycle():
    sim = Simulator()
    assert sim.run(10) == 10
    assert sim.cycle == 10


def test_components_tick_once_per_cycle():
    sim = Simulator()
    c = sim.add(Counter())
    sim.run(5)
    assert c.ticks == 5
    assert c.seen_cycles == [0, 1, 2, 3, 4]


def test_adding_component_twice_raises():
    sim = Simulator()
    c = Counter()
    sim.add(c)
    with pytest.raises(SimulationError):
        sim.add(c)


def test_run_until_returns_cycle_condition_became_true():
    sim = Simulator()
    c = sim.add(Counter())
    cycle = sim.run_until(lambda: c.ticks >= 7)
    assert cycle == 7
    assert c.ticks == 7


def test_run_until_timeout_raises():
    sim = Simulator()
    with pytest.raises(SimulationError, match="timeout"):
        sim.run_until(lambda: False, max_cycles=10, what="never")


def test_reset_restores_components_and_clock():
    sim = Simulator()
    c = sim.add(Counter())
    sim.run(3)
    sim.reset()
    assert sim.cycle == 0
    assert c.ticks == 0


def test_watchers_run_after_commit():
    sim = Simulator()
    seen = []
    sim.add_watcher(lambda cyc: seen.append(cyc))
    sim.run(3)
    assert seen == [0, 1, 2]


def test_find_component_by_name():
    sim = Simulator()
    c = sim.add(Counter())
    assert sim.find("counter") is c
    assert sim.find("nope") is None


def test_channel_registered_with_simulator_commits():
    sim = Simulator()
    ch = Channel(sim, "x")
    ch.send(1)
    assert not ch.can_recv()  # not committed yet
    sim.step()
    assert ch.can_recv()


# ----------------------------------------------------------------------
# active-set scheduling
# ----------------------------------------------------------------------
class Sleeper(Component):
    """Ticks only while it has work; sleeps when its inbox is empty."""

    def __init__(self, inbox):
        super().__init__("sleeper")
        self.inbox = inbox
        inbox.add_listener(self, "recv")  # pure receiver
        self.ticks = 0
        self.got = []

    def tick(self, cycle):
        self.ticks += 1
        while self.inbox.can_recv():
            self.got.append((cycle, self.inbox.recv()))

    def is_idle(self):
        return not self.inbox.can_recv()


def test_idle_component_is_not_ticked():
    sim = Simulator()
    ch = Channel(sim, "inbox")
    sleeper = sim.add(Sleeper(ch))
    sim.run(10)
    assert sleeper.ticks == 1  # initial tick, then asleep
    assert sleeper not in sim.active_components


def test_channel_event_wakes_receiver_next_cycle():
    sim = Simulator()
    ch = Channel(sim, "inbox")
    sleeper = sim.add(Sleeper(ch))
    sim.run(5)
    ch.send("ping")  # external event while the component sleeps
    sim.run(5)
    # The beat committed at cycle 5 and was consumed in cycle 6's tick,
    # exactly as if the component had been ticked every cycle.
    assert sleeper.got == [(6, "ping")]
    assert sleeper.ticks == 2


def test_wake_at_schedules_timed_wakeup():
    sim = Simulator()

    class Timed(Component):
        def __init__(self):
            super().__init__("timed")
            self.tick_cycles = []

        def tick(self, cycle):
            self.tick_cycles.append(cycle)
            self.wake_at(cycle + 7)

        def is_idle(self):
            return True

    timed = sim.add(Timed())
    sim.run(30)
    assert timed.tick_cycles == [0, 7, 14, 21, 28]


def test_fast_forward_skips_quiescent_stretches():
    sim = Simulator()
    ch = Channel(sim, "inbox")
    sim.add(Sleeper(ch))
    sim.run(10_000)
    assert sim.cycle == 10_000
    assert sim.cycles_fast_forwarded > 9_000


def test_fast_forward_still_runs_watchers_every_cycle():
    sim = Simulator()
    seen = []
    sim.add_watcher(seen.append)
    sim.run(1000)
    assert seen == list(range(1000))


def test_fast_forward_preserves_channel_busy_cycles():
    sim = Simulator()
    ch = Channel(sim, "inbox", capacity=4)
    sim.add(Sleeper(ch))

    class KeepOne(Component):
        """Holds one committed beat in a channel nobody consumes."""

    stale = Channel(sim, "stale")
    stale.send("x")
    sim.run(100)
    assert stale.busy_cycles == 100  # accounted across the fast-forward


def test_run_until_timeout_with_quiescent_system():
    sim = Simulator()
    ch = Channel(sim, "inbox")
    sim.add(Sleeper(ch))
    with pytest.raises(SimulationError, match="timeout"):
        sim.run_until(lambda: False, max_cycles=1_000_000, what="never")
    assert sim.cycle == 1_000_000  # fast-forwarded to the deadline


def test_naive_mode_ticks_everything():
    sim = Simulator(active_set=False)
    ch = Channel(sim, "inbox")
    sleeper = sim.add(Sleeper(ch))
    sim.run(10)
    assert sleeper.ticks == 10
    assert sim.cycles_fast_forwarded == 0


def test_default_component_stays_active():
    # Components without an is_idle override must tick every cycle.
    sim = Simulator()
    counter = sim.add(Counter())
    ch = Channel(sim, "inbox")
    sim.add(Sleeper(ch))
    sim.run(50)
    assert counter.ticks == 50


def test_reset_reactivates_sleepers():
    sim = Simulator()
    ch = Channel(sim, "inbox")
    sleeper = sim.add(Sleeper(ch))
    sim.run(10)
    sim.reset()
    assert sleeper in sim.active_components
    sim.run(10)
    assert sim.cycle == 10


# ----------------------------------------------------------------------
# express routes (batched datapath)
# ----------------------------------------------------------------------
def test_express_route_forwards_middles_and_hands_back_the_boundary():
    from dataclasses import dataclass

    from repro.sim import Channel, ExpressRoute

    @dataclass
    class Beat:
        index: int
        last: bool = False

    class Owner(Component):
        def __init__(self):
            super().__init__("owner")
            self.ticks = 0

        def tick(self, cycle):
            self.ticks += 1

        def is_idle(self):
            return True  # only express completion/cancel wakes us

    sim = Simulator()
    owner = sim.add(Owner())
    src = Channel(sim, "src", capacity=8)
    dst = Channel(sim, "dst", capacity=8)
    src.add_listener(owner, "recv")
    dst.add_listener(owner, "send")
    order = ExpressRoute(src, dst, owner).install(sim)
    assert not src._recv_listeners  # suppressed while installed
    sim.run(1)  # drain the owner's initial activation tick
    src.send_many([Beat(0), Beat(1), Beat(2), Beat(3, last=True)])
    ticks_before = owner.ticks
    sim.run(4)
    # Three middles crossed without the owner ticking...
    assert len(dst._queue) + len(dst._pending) == 3
    assert owner.ticks == ticks_before
    # ...and the boundary beat cancelled the order and woke the owner.
    assert order not in sim._express
    assert src._recv_listeners == (owner,)  # subscription restored
    assert src.peek().last  # the boundary beat is left for the owner
    sim.run(1)
    assert owner.ticks > ticks_before


def test_reset_drops_leftover_express_orders():
    from repro.sim import Channel, ExpressRoute

    sim = Simulator()
    owner = sim.add(Component("o"))
    src = Channel(sim, "src")
    dst = Channel(sim, "dst")
    ExpressRoute(src, dst, owner).install(sim)
    sim.reset()
    assert not sim._express
