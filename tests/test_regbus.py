"""Tests for the register-bus adapter and a modelled boot flow."""

import pytest

from repro.realm import RealmRegisterFile
from repro.realm import register_file as rf
from repro.realm.regbus import RegbusAdapter, RegbusRequester
from repro.sim import Simulator

from helpers import build_realm_system

HWROT = 0x1
CVA6 = 0x2
EVIL = 0x66


def make(sim):
    drv, realm, sram = make_parts = build_realm_system(sim)
    regfile = RealmRegisterFile([realm])
    adapter = sim.add(RegbusAdapter(sim, regfile))
    return realm, regfile, adapter


def settle(sim, requester, max_cycles=1000):
    sim.run_until(lambda: requester.idle, max_cycles=max_cycles,
                  what="regbus requester")


def test_guarded_read_write_over_the_bus(sim):
    realm, regfile, adapter = make(sim)
    boot = sim.add(RegbusRequester(adapter, tid=HWROT))
    t_claim = boot.write(0x0, HWROT)
    t_read = boot.read(rf.unit_base(0) + rf.CTRL)
    settle(sim, boot)
    assert boot.response_for(t_claim).ok
    rsp = boot.response_for(t_read)
    assert rsp.ok
    assert rsp.data & rf.CTRL_REGULATION_EN


def test_unclaimed_access_gets_error_response(sim):
    realm, regfile, adapter = make(sim)
    rogue = sim.add(RegbusRequester(adapter, tid=EVIL))
    tag = rogue.read(rf.unit_base(0) + rf.CTRL)
    settle(sim, rogue)
    rsp = rogue.response_for(tag)
    assert not rsp.ok
    assert "unclaimed" in rsp.error
    assert adapter.errors == 1


def test_boot_flow_hwrot_claims_then_hands_to_cva6(sim):
    """The paper's proposed flow: the HWRoT claims the config space during
    boot and hands ownership over to the host core."""
    realm, regfile, adapter = make(sim)
    hwrot = sim.add(RegbusRequester(adapter, tid=HWROT))
    cva6 = sim.add(RegbusRequester(adapter, tid=CVA6))

    hwrot.write(0x0, HWROT)  # claim at boot
    settle(sim, hwrot)
    # CVA6 cannot configure yet.
    denied = cva6.write(rf.unit_base(0) + rf.GRANULARITY, 4)
    settle(sim, cva6)
    assert not cva6.response_for(denied).ok

    hwrot.write(0x0, CVA6)  # handover
    settle(sim, hwrot)
    allowed = cva6.write(rf.unit_base(0) + rf.GRANULARITY, 4)
    settle(sim, cva6)
    assert cva6.response_for(allowed).ok
    sim.run(10)  # drain + apply the intrusive change
    assert realm.config.granularity == 4


def test_one_access_per_latency_window(sim):
    realm, regfile, adapter = make(sim)
    boot = sim.add(RegbusRequester(adapter, tid=HWROT))
    boot.write(0x0, HWROT)
    for _ in range(4):
        boot.read(rf.unit_base(0) + rf.STATUS)
    settle(sim, boot)
    assert adapter.accesses == 5
    assert len(boot.responses) == 5


def test_adapter_validates_latency(sim):
    realm, regfile, _ = make(sim)
    with pytest.raises(ValueError):
        RegbusAdapter(sim, regfile, latency=-1)


def test_adapter_reset(sim):
    realm, regfile, adapter = make(sim)
    boot = sim.add(RegbusRequester(adapter, tid=HWROT))
    boot.write(0x0, HWROT)
    settle(sim, boot)
    adapter.reset()
    assert adapter.accesses == 0
