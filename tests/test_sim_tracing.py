"""Unit tests for the channel tracer."""

from repro.sim import Channel, Simulator, Tracer


def make():
    sim = Simulator()
    ch = Channel(sim, "data")
    tr = Tracer(sim)
    tr.watch(ch)
    return sim, ch, tr


def test_tracer_records_send_and_recv_with_cycles():
    sim, ch, tr = make()
    ch.send("x")
    sim.step()
    ch.recv()
    events = tr.events()
    assert [(e.kind, e.cycle) for e in events] == [("send", 0), ("recv", 1)]
    assert events[0].payload == "x"
    assert events[0].channel == "data"


def test_tracer_filters():
    sim, ch, tr = make()
    ch.send(1)
    sim.step()
    ch.recv()
    assert len(tr.events(kind="send")) == 1
    assert len(tr.events(channel="data")) == 2
    assert len(tr.events(channel="other")) == 0
    assert len(tr.events(predicate=lambda e: e.payload == 1)) == 2


def test_tracer_disable_enable():
    sim, ch, tr = make()
    tr.disable()
    ch.send(1)
    sim.step()
    assert len(tr) == 0
    tr.enable()
    ch.send(2)
    assert len(tr) == 1


def test_tracer_clear_and_dump():
    sim, ch, tr = make()
    ch.send(1)
    assert "send" in tr.dump()
    tr.clear()
    assert len(tr) == 0


def test_tracer_bounds_memory():
    sim = Simulator()
    ch = Channel(sim, "c", capacity=10)
    tr = Tracer(sim, max_events=10)
    tr.watch(ch)
    for i in range(30):
        ch.send(i)
        sim.step()
        ch.recv()
    assert len(tr) <= 10
