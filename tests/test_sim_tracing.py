"""Unit tests for the channel tracer."""

from repro.sim import Channel, Simulator, Tracer


def make():
    sim = Simulator()
    ch = Channel(sim, "data")
    tr = Tracer(sim)
    tr.watch(ch)
    return sim, ch, tr


def test_tracer_records_send_and_recv_with_cycles():
    sim, ch, tr = make()
    ch.send("x")
    sim.step()
    ch.recv()
    events = tr.events()
    assert [(e.kind, e.cycle) for e in events] == [("send", 0), ("recv", 1)]
    assert events[0].payload == "x"
    assert events[0].channel == "data"


def test_tracer_filters():
    sim, ch, tr = make()
    ch.send(1)
    sim.step()
    ch.recv()
    assert len(tr.events(kind="send")) == 1
    assert len(tr.events(channel="data")) == 2
    assert len(tr.events(channel="other")) == 0
    assert len(tr.events(predicate=lambda e: e.payload == 1)) == 2


def test_tracer_disable_enable():
    sim, ch, tr = make()
    tr.disable()
    ch.send(1)
    sim.step()
    assert len(tr) == 0
    tr.enable()
    ch.send(2)
    assert len(tr) == 1


def test_tracer_clear_and_dump():
    sim, ch, tr = make()
    ch.send(1)
    assert "send" in tr.dump()
    tr.clear()
    assert len(tr) == 0


def test_tracer_bounds_memory():
    sim = Simulator()
    ch = Channel(sim, "c", capacity=10)
    tr = Tracer(sim, max_events=10)
    tr.watch(ch)
    for i in range(30):
        ch.send(i)
        sim.step()
        ch.recv()
    assert len(tr) <= 10


def test_tracer_eviction_is_exact_at_the_boundary():
    """Regression: the bound used to halve the buffer once exceeded;
    drop-oldest must evict exactly one event per overflow."""
    sim = Simulator()
    ch = Channel(sim, "c", capacity=64)
    tr = Tracer(sim, max_events=5)
    tr.watch(ch)
    for i in range(5):
        ch.send(i)
    assert len(tr) == 5 and tr.dropped_events == 0
    ch.send(5)  # one past the bound: exactly the oldest goes
    assert len(tr) == 5
    assert tr.dropped_events == 1
    assert [e.payload for e in tr.events()] == [1, 2, 3, 4, 5]
    ch.send(6)
    assert [e.payload for e in tr.events()] == [2, 3, 4, 5, 6]
    # Filtering sees exactly the retained window.
    assert [e.payload for e in tr.events(kind="send")] == [2, 3, 4, 5, 6]
    tr.clear()
    assert len(tr) == 0 and tr.dropped_events == 0


def test_multiple_tracers_fan_out_on_one_channel():
    sim = Simulator()
    ch = Channel(sim, "c")
    a, b = Tracer(sim), Tracer(sim)
    a.watch(ch)
    b.watch(ch)
    a.watch(ch)  # re-attach is a no-op, not a duplicate subscription
    ch.send("x")
    assert len(a) == 1 and len(b) == 1
    ch.detach_tracer(a)
    sim.step()
    ch.recv()
    assert len(a) == 1 and len(b) == 2


def test_tracer_attaches_through_the_probe_event_api():
    from repro.control import ProbeRegistry

    sim = Simulator()
    reg = ProbeRegistry()
    data = Channel(sim, "data")
    ctrl = Channel(sim, "ctrl")
    reg.register_channel("port.m.data", data)
    reg.register_channel("port.m.ctrl", ctrl)
    tr = Tracer(sim)
    assert tr.watch_probes(reg, "port.m.*") == ["port.m.data", "port.m.ctrl"]
    data.send(1)
    ctrl.send(2)
    assert {e.channel for e in tr.events()} == {"data", "ctrl"}


# ----------------------------------------------------------------------
# commit-window event ordering and batch-delta counter audit
# ----------------------------------------------------------------------
def test_same_commit_window_send_recv_counts_once_each():
    """A channel that is pushed and popped in the same commit window
    (the skid-buffer steady state) must record exactly one send and one
    recv per beat — no double counting through the tracer fan-out or the
    probe counters."""
    sim = Simulator()
    ch = Channel(sim, "hop", capacity=2)
    tr = Tracer(sim)
    tr.watch(ch)
    ch.send("b0")
    sim.step()
    # Steady state: pop the committed beat and push the next in the same
    # cycle, five times over.
    for i in range(1, 6):
        assert ch.recv() == f"b{i - 1}"
        ch.send(f"b{i}")
        sim.step()
    assert ch.sent_total == 6
    assert ch.recv_total == 5
    sends = tr.events(kind="send")
    recvs = tr.events(kind="recv")
    assert len(sends) == 6 and len(recvs) == 5


def test_send_precedes_recv_for_every_beat_at_a_hop():
    """Locked ordering contract: at any hop, a beat's send event strictly
    precedes its recv event (registered output: recv is at least one
    cycle later), even when the recv shares a commit window with another
    beat's send."""
    sim = Simulator()
    ch = Channel(sim, "hop", capacity=2)
    tr = Tracer(sim)
    tr.watch(ch)
    ch.send(0)
    sim.step()
    for i in range(1, 8):
        ch.recv()
        ch.send(i)
        sim.step()
    order = {}
    for position, event in enumerate(tr.events()):
        order.setdefault((event.payload, event.kind), (position, event.cycle))
    for beat in range(7):
        send_pos, send_cycle = order[(beat, "send")]
        recv_pos, recv_cycle = order[(beat, "recv")]
        assert send_pos < recv_pos
        assert send_cycle < recv_cycle


def _traced_burst_events(batched):
    """Per-channel (cycle, kind) event streams of a regulated DMA burst
    run, traced at the manager port hop."""
    from repro.realm import RegionConfig
    from repro.system import SystemBuilder
    from repro.traffic import DmaEngine

    system = (
        SystemBuilder(active_set=True, batched=batched)
        .with_crossbar()
        .add_manager("dma", granularity=16,
                     regions=[RegionConfig(base=0, size=0x20000,
                                           budget_bytes=4096,
                                           period_cycles=500)])
        .add_manager("idle")
        .add_sram("mem", base=0, size=0x20000, capacity=4)
        .build()
    )
    tracer = system.trace("port.dma.*")
    system.attach(
        "dma",
        lambda port: DmaEngine(port, src_base=0, src_size=0x4000,
                               dst_base=0x8000, dst_size=0x4000,
                               burst_beats=64),
    )
    system.sim.run(1_500)
    streams = {}
    for event in tracer.events():
        streams.setdefault(event.channel, []).append(
            (event.cycle, event.kind)
        )
    return streams


def test_traced_event_streams_identical_batched_vs_per_beat():
    """Express forwarding feeds the tracer from batch deltas: every hop
    sees the identical per-channel (cycle, kind) stream as the per-beat
    reference path."""
    assert _traced_burst_events(True) == _traced_burst_events(False)
