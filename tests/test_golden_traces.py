"""Golden-trace regression harness for the shipped scenario files.

Every ``scenarios/*.toml`` campaign runs at smoke scale on BOTH kernels
and its observable digest (per-manager counters, latency summaries,
REALM bookkeeping, channel statistics, execution cycles) is diffed
against the checked-in ``tests/golden/<name>.json``.  Because the two
kernel variants assert against the *same* golden file, any change that
breaks cycle-accuracy — in either kernel, the builder, the traffic
models, or the scenario expansion itself — fails here before it can
drift silently.

Regenerate after an intentional behaviour change with::

    python -m pytest tests/test_golden_traces.py --update-golden

(the active-set runs re-record the files; the naive-kernel runs still
assert against the fresh goldens, so cycle-identity is re-verified
during the update).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.scenario import load_file, run_campaign

SCENARIO_DIR = Path(__file__).resolve().parent.parent / "scenarios"
GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

SCENARIOS = sorted(SCENARIO_DIR.glob("*.toml"))

# active_set=True first: an --update-golden run records from the
# active-set pass, then the naive pass checks against the fresh file.
_CASES = [
    pytest.param(path, active_set,
                 id=f"{path.stem}-{'active' if active_set else 'naive'}")
    for path in SCENARIOS
    for active_set in (True, False)
]


def _campaign_digest(path: Path, active_set: bool) -> dict:
    spec = load_file(path)
    result = run_campaign(spec, smoke=True, active_set=active_set)
    return result.digest()


def test_scenarios_are_shipped():
    assert SCENARIOS, f"no scenario files found in {SCENARIO_DIR}"


def test_every_scenario_has_a_golden():
    missing = [
        path.stem for path in SCENARIOS
        if not (GOLDEN_DIR / f"{path.stem}.json").exists()
    ]
    assert not missing, (
        f"missing golden traces for {missing}; run "
        "`python -m pytest tests/test_golden_traces.py --update-golden`"
    )


def test_no_stale_goldens():
    stems = {path.stem for path in SCENARIOS}
    stale = [
        path.name for path in sorted(GOLDEN_DIR.glob("*.json"))
        if path.stem not in stems
    ]
    assert not stale, f"golden traces without a scenario file: {stale}"


@pytest.mark.parametrize("scenario_path,active_set", _CASES)
def test_golden_trace(scenario_path: Path, active_set: bool, request):
    digest = _campaign_digest(scenario_path, active_set)
    golden_path = GOLDEN_DIR / f"{scenario_path.stem}.json"
    if request.config.getoption("--update-golden") and active_set:
        GOLDEN_DIR.mkdir(exist_ok=True)
        golden_path.write_text(
            json.dumps(digest, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    assert golden_path.exists(), (
        f"no golden trace for {scenario_path.stem}; run with --update-golden"
    )
    golden = json.loads(golden_path.read_text(encoding="utf-8"))
    assert digest == golden, (
        f"{scenario_path.stem} drifted from its golden trace on the "
        f"{'active-set' if active_set else 'naive'} kernel; if the change "
        "is intentional, regenerate with --update-golden"
    )
