"""Splitter-specific behaviour through a full REALM unit."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.axi import BurstType
from repro.sim import Simulator

from helpers import build_realm_system


def finish(sim, drv, max_cycles=100_000):
    sim.run_until(lambda: drv.idle, max_cycles=max_cycles, what="driver")


def test_atomic_like_fixed_burst_not_split(sim):
    drv, realm, sram = build_realm_system(sim)
    realm.set_granularity(1)
    op = drv.read(0x0, beats=8, burst=BurstType.FIXED)
    finish(sim, drv)
    assert op.done
    assert realm.splitter.bursts_split == 0
    assert sram.reads_served == 1  # arrived whole


def test_non_modifiable_short_burst_not_split(sim):
    drv, realm, sram = build_realm_system(sim)
    realm.set_granularity(1)
    op = drv.read(0x0, beats=16, modifiable=False)
    finish(sim, drv)
    assert realm.splitter.bursts_split == 0
    assert sram.reads_served == 1


def test_non_modifiable_long_burst_is_split(sim):
    drv, realm, sram = build_realm_system(sim)
    realm.set_granularity(8)
    op = drv.read(0x0, beats=32, modifiable=False)
    finish(sim, drv)
    assert realm.splitter.bursts_split == 1
    assert sram.reads_served == 4


def test_splitter_disabled_passes_bursts_whole(sim):
    drv, realm, sram = build_realm_system(sim)
    realm.set_granularity(1)
    realm.set_splitter_enabled(False)
    sim.run(5)  # let the reconfiguration apply
    op = drv.read(0x0, beats=64)
    finish(sim, drv)
    assert realm.splitter.bursts_split == 0
    assert sram.reads_served == 1


def test_granularity_256_passes_max_burst_whole(sim):
    from repro.realm import RealmUnitParams

    params = RealmUnitParams(write_buffer_present=False)
    drv, realm, sram = build_realm_system(sim, params=params)
    realm.set_granularity(256)
    op = drv.read(0x0, beats=256)
    finish(sim, drv)
    assert realm.splitter.bursts_split == 0
    assert sram.reads_served == 1


def test_fragment_count_statistic(sim):
    drv, realm, sram = build_realm_system(sim)
    realm.set_granularity(4)
    drv.read(0x0, beats=16)
    finish(sim, drv)
    assert realm.splitter.fragments_emitted == 4


def test_interleaved_reads_and_writes_with_splitting(sim):
    drv, realm, sram = build_realm_system(sim)
    realm.set_granularity(2)
    payload = bytes(i & 0xFF for i in range(64))
    drv.write(0x0, payload, beats=8)
    drv.read(0x0, beats=8)
    drv.write(0x40, payload, beats=8)
    drv.read(0x40, beats=8)
    finish(sim, drv)
    reads = [op for op in drv.completed if op.kind == "read"]
    assert all(op.rdata == payload for op in reads)


@settings(max_examples=15, deadline=None)
@given(
    beats=st.sampled_from([1, 2, 3, 8, 15, 16]),
    gran=st.sampled_from([1, 2, 4, 8, 16]),
)
def test_property_data_integrity_across_granularities(beats, gran):
    """Write-then-read returns identical data for any granularity."""
    sim = Simulator()
    drv, realm, sram = build_realm_system(sim)
    realm.set_granularity(gran)
    payload = bytes((i * 7 + 3) & 0xFF for i in range(beats * 8))
    drv.write(0x100, payload, beats=beats)
    op = drv.read(0x100, beats=beats)
    finish(sim, drv)
    assert op.rdata == payload
