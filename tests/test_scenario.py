"""Unit tests for the scenario subsystem: loader messages, sweep
mechanics, runner behaviour, and report artefacts."""

from __future__ import annotations

import json

import pytest

from repro.realm.regions import UNLIMITED
from repro.scenario import (
    ScenarioError,
    apply_overrides,
    derive_seed,
    expand,
    load_file,
    loads,
    run_campaign,
    run_point,
    set_by_path,
    validate,
)

MINIMAL = """
[scenario]
name = "mini"
seed = 1

[run]
horizon = 200

[topology]
[[topology.managers]]
name = "hog"

[[topology.memories]]
name = "mem"
kind = "sram"
base = 0x0
size = 0x1_0000

[traffic.hog]
kind = "hog"
window = 0x8000
beats = 16
"""


def _minimal_dict() -> dict:
    return loads(MINIMAL).to_dict()


# ----------------------------------------------------------------------
# loader: precise errors
# ----------------------------------------------------------------------
def test_bad_toml_syntax_is_a_scenario_error():
    with pytest.raises(ScenarioError, match="invalid TOML"):
        loads("[scenario\nname=")


def test_bad_json_syntax_is_a_scenario_error():
    with pytest.raises(ScenarioError, match="invalid JSON"):
        loads("{not json", fmt="json")


def test_unknown_field_suggests_the_close_match():
    raw = _minimal_dict()
    raw["topology"]["managers"][0]["granularityy"] = 8
    with pytest.raises(ScenarioError, match="did you mean 'granularity'"):
        validate(raw)


def test_wrong_type_names_the_path():
    raw = _minimal_dict()
    raw["topology"]["managers"][0]["capacity"] = "big"
    with pytest.raises(ScenarioError,
                       match=r"topology.managers\[0\].capacity"):
        validate(raw)


def test_missing_required_field_names_the_path():
    raw = _minimal_dict()
    del raw["topology"]["memories"][0]["size"]
    with pytest.raises(ScenarioError,
                       match=r"topology.memories\[0\].size"):
        validate(raw)


def test_bool_is_not_an_int():
    raw = _minimal_dict()
    raw["scenario"]["seed"] = True
    with pytest.raises(ScenarioError, match="scenario.seed"):
        validate(raw)


def test_duplicate_manager_names_rejected():
    raw = _minimal_dict()
    raw["topology"]["managers"].append({"name": "hog"})
    with pytest.raises(ScenarioError, match="duplicate name 'hog'"):
        validate(raw)


def test_run_until_requires_a_core_binding():
    raw = _minimal_dict()
    raw["run"] = {"until": ["hog"]}
    with pytest.raises(ScenarioError, match="no core traffic"):
        validate(raw)


def test_until_and_horizon_are_mutually_exclusive():
    raw = _minimal_dict()
    raw["run"]["until"] = ["hog"]
    with pytest.raises(ScenarioError, match="exactly one of"):
        validate(raw)


def test_warm_requires_a_cached_memory():
    raw = _minimal_dict()
    raw["warm"] = [{"cache": "llc", "base": 0, "size": 64}]
    with pytest.raises(ScenarioError, match="no cached_dram memory"):
        validate(raw)


def test_traffic_for_unknown_manager_rejected():
    raw = _minimal_dict()
    raw["traffic"]["ghost"] = {"kind": "hog"}
    with pytest.raises(ScenarioError, match="unknown manager 'ghost'"):
        validate(raw)


def test_regulation_flag_without_a_realm_unit_rejected():
    raw = _minimal_dict()
    raw["topology"]["managers"][0]["regulation"] = True
    with pytest.raises(ScenarioError, match="REALM unit only"):
        validate(raw)
    raw["topology"]["managers"][0].pop("regulation")
    raw["topology"]["managers"][0]["throttle"] = False
    with pytest.raises(ScenarioError, match="REALM unit only"):
        validate(raw)


def test_realm_and_baseline_regulator_are_exclusive():
    raw = _minimal_dict()
    raw["topology"]["managers"][0].update(
        protect=True,
        regulator={"kind": "cnf", "depth_beats": 16},
    )
    with pytest.raises(ScenarioError, match="not both"):
        validate(raw)


def test_noc_table_requires_noc_interconnect():
    raw = _minimal_dict()
    raw["topology"]["noc"] = {"width": 2, "height": 2}
    with pytest.raises(ScenarioError, match='requires interconnect = "noc"'):
        validate(raw)


def test_unlimited_budget_strings_parse_to_sentinel():
    raw = _minimal_dict()
    raw["topology"]["managers"][0]["regions"] = [{
        "base": 0, "size": 0x8000,
        "budget_bytes": "unlimited", "period_cycles": 500,
    }]
    spec = validate(raw)
    region = spec.topology.managers[0].regions[0]
    assert region.budget_bytes == UNLIMITED
    assert region.period_cycles == 500
    # ...and serialize back to the readable form.
    out = spec.to_dict()
    assert (out["topology"]["managers"][0]["regions"][0]["budget_bytes"]
            == "unlimited")


def test_load_file_rejects_unknown_suffix(tmp_path):
    path = tmp_path / "scenario.yaml"
    path.write_text("{}")
    with pytest.raises(ScenarioError, match="unsupported scenario file"):
        load_file(path)


def test_load_file_missing_file(tmp_path):
    with pytest.raises(ScenarioError, match="cannot read scenario file"):
        load_file(tmp_path / "nope.toml")


def test_load_file_json(tmp_path):
    path = tmp_path / "mini.json"
    path.write_text(json.dumps(_minimal_dict()))
    assert load_file(path) == loads(MINIMAL)


# ----------------------------------------------------------------------
# sweep: paths, expansion, seeds
# ----------------------------------------------------------------------
def test_set_by_path_resolves_list_elements_by_name():
    raw = _minimal_dict()
    set_by_path(raw, "topology.managers.hog.granularity", 4)
    set_by_path(raw, "topology.memories.0.size", 0x2_0000)
    spec = validate(raw)
    assert spec.topology.managers[0].granularity == 4
    assert spec.topology.memories[0].size == 0x2_0000


def test_set_by_path_unknown_name_lists_alternatives():
    raw = _minimal_dict()
    with pytest.raises(ScenarioError, match="no element named 'dma'"):
        set_by_path(raw, "topology.managers.dma.granularity", 4)


def test_set_by_path_unknown_segment_lists_alternatives():
    raw = _minimal_dict()
    with pytest.raises(ScenarioError, match="unknown path segment"):
        set_by_path(raw, "topology.mangers.hog.granularity", 4)


def test_set_by_path_index_out_of_range():
    raw = _minimal_dict()
    with pytest.raises(ScenarioError, match="out of range"):
        set_by_path(raw, "topology.memories.3.size", 1)


def test_apply_overrides_revalidates():
    spec = loads(MINIMAL)
    with pytest.raises(ScenarioError, match="run"):
        apply_overrides(spec, {"run.horizon": -5})


def test_expand_orders_points_then_grid():
    raw = _minimal_dict()
    raw["campaign"] = {
        "points": [{"label": "special", "set": {"run.horizon": 10}}],
        "sweep": [
            {"field": "traffic.hog.beats", "values": [1, 2]},
            {"field": "run.horizon", "values": [100, 300],
             "labels": ["short", "long"]},
        ],
    }
    labels = [p.label for p in expand(validate(raw))]
    assert labels == [
        "special",
        "beats=1,short", "beats=1,long",
        "beats=2,short", "beats=2,long",
    ]


def test_expand_without_campaign_yields_base_point():
    points = expand(loads(MINIMAL))
    assert [p.label for p in points] == ["mini"]
    assert points[0].spec.run.horizon == 200


def test_axis_fields_apply_one_value_to_all():
    raw = _minimal_dict()
    raw["topology"]["managers"].append({"name": "m2"})
    raw["campaign"] = {
        "sweep": [{
            "fields": ["topology.managers.hog.capacity",
                       "topology.managers.m2.capacity"],
            "values": [3, 5],
        }]
    }
    points = expand(validate(raw))
    for point, cap in zip(points, (3, 5)):
        assert [m.capacity for m in point.spec.topology.managers] == [cap, cap]


def test_derive_seed_is_stable_and_spread():
    assert derive_seed(1, 0, "a") == derive_seed(1, 0, "a")
    assert derive_seed(1, 0, "a") != derive_seed(1, 1, "a")
    assert derive_seed(1, 0, "a") != derive_seed(2, 0, "a")


def test_unpinned_core_seed_is_derived_per_point():
    raw = _minimal_dict()
    raw["traffic"]["hog"] = {"kind": "core", "pattern": "susan",
                             "n_accesses": 5}
    raw["campaign"] = {"sweep": [{"field": "run.horizon",
                                  "values": [50, 60]}]}
    points = expand(validate(raw))
    seeds = [p.spec.traffic_for("hog").param("seed") for p in points]
    assert all(isinstance(s, int) for s in seeds)
    assert seeds[0] != seeds[1]
    assert seeds[0] == derive_seed(points[0].seed, "hog")
    # Pinning the seed in the file disables derivation.
    raw["traffic"]["hog"]["seed"] = 7
    points = expand(validate(raw))
    assert [p.spec.traffic_for("hog").param("seed") for p in points] == [7, 7]


def test_duplicate_labels_rejected_at_expansion():
    raw = _minimal_dict()
    raw["campaign"] = {
        "points": [{"label": "beats=1"}],
        "sweep": [{"field": "traffic.hog.beats", "values": [1]}],
    }
    with pytest.raises(ScenarioError, match="duplicate point label"):
        expand(validate(raw))


# ----------------------------------------------------------------------
# runner + report
# ----------------------------------------------------------------------
def test_run_point_collects_observables():
    point = expand(loads(MINIMAL))[0]
    result = run_point(point)
    assert result.sim_cycles == 200
    assert result.observables["managers"]["hog"]["bytes_stolen"] > 0
    assert "hog" in result.observables["channels"]


def test_disabled_traffic_is_not_attached():
    raw = _minimal_dict()
    raw["traffic"]["hog"]["enabled"] = False
    result = run_point(expand(validate(raw))[0])
    assert result.observables["managers"] == {}
    assert result.sim_cycles == 200


def test_run_until_with_all_bindings_disabled_errors():
    raw = _minimal_dict()
    raw["traffic"]["hog"] = {"kind": "core", "pattern": "sequential",
                             "n_accesses": 3, "enabled": False}
    raw["run"] = {"until": ["hog"]}
    with pytest.raises(ScenarioError, match="enabled=false"):
        run_point(expand(validate(raw))[0])


def test_unelaboratable_topology_is_a_scenario_error():
    raw = _minimal_dict()
    # 1x1 mesh cannot place a manager and a memory on distinct nodes.
    raw["topology"]["interconnect"] = "noc"
    raw["topology"]["noc"] = {"width": 1, "height": 1}
    with pytest.raises(ScenarioError, match="topology does not elaborate"):
        run_point(expand(validate(raw))[0])


def test_campaign_reports_perf_relative_to_baseline(tmp_path):
    raw = _minimal_dict()
    raw["traffic"]["hog"] = {"kind": "core", "pattern": "sequential",
                             "n_accesses": 10}
    raw["run"] = {"until": ["hog"], "max_cycles": 10_000}
    raw["campaign"] = {
        "baseline": "alone",
        "points": [{"label": "alone"},
                   {"label": "slow", "set": {"traffic.hog.gap": 5}}],
    }
    result = run_campaign(validate(raw))
    alone, slow = result.points
    assert alone.perf_percent == 100.0
    assert slow.perf_percent < 100.0
    json_path = tmp_path / "report.json"
    csv_path = tmp_path / "report.csv"
    result.write_json(json_path)
    result.write_csv(csv_path)
    report = json.loads(json_path.read_text())
    assert report["baseline"] == "alone"
    assert [p["label"] for p in report["points"]] == ["alone", "slow"]
    assert csv_path.read_text().count("\n") == 3  # header + 2 points


def test_campaign_jobs_fanout_matches_sequential():
    raw = _minimal_dict()
    raw["campaign"] = {"sweep": [{"field": "traffic.hog.beats",
                                  "values": [4, 8, 16]}]}
    spec = validate(raw)
    assert (run_campaign(spec).digest()
            == run_campaign(spec, jobs=3).digest())


def test_baseline_regulator_kinds_elaborate_and_run():
    for regulator in (
        {"kind": "abu", "budget_bytes": 512, "period_cycles": 200},
        {"kind": "abe", "nominal_burst": 1, "max_outstanding": 2},
        {"kind": "cnf", "depth_beats": 32},
    ):
        raw = _minimal_dict()
        raw["topology"]["managers"][0]["regulator"] = regulator
        result = run_point(expand(validate(raw))[0])
        assert result.sim_cycles == 200


def test_zero_execution_cycles_is_a_number_not_missing(tmp_path):
    """A primary manager finishing in 0 execution cycles is a real
    measurement: relative perf must be computed (not skipped by a falsy
    check) and every artefact must render the 0 instead of '-'."""
    from repro.scenario.report import CampaignResult, PointResult

    def point(label: str, cycles: int) -> PointResult:
        return PointResult(
            label=label, index=0, seed=1, sim_cycles=10,
            primary_manager="hog", execution_cycles=cycles,
            observables={"sim_cycles": 10},
        )

    result = CampaignResult(
        name="zero", description="", seed=1, active_set=True,
        baseline_label="base",
        points=[point("base", 0), point("also-zero", 0),
                point("busy", 50)],
    )
    result._fill_relative()
    base, also_zero, busy = result.points
    assert base.perf_percent == 100.0
    assert also_zero.perf_percent == 100.0
    assert busy.perf_percent == 0.0  # slower than a 0-cycle baseline

    table = result.format_table()
    base_row = table.splitlines()[1]
    assert "       0" in base_row and " - " not in base_row

    json_path = tmp_path / "report.json"
    csv_path = tmp_path / "report.csv"
    result.write_json(json_path)
    result.write_csv(csv_path)
    report = json.loads(json_path.read_text())
    assert report["points"][0]["execution_cycles"] == 0
    assert report["points"][0]["perf_percent"] == 100.0
    rows = csv_path.read_text().splitlines()
    assert rows[1].startswith("base,1,10,0,100.0")
