"""Control-plane tests: probes, knobs, schedule, and scenario wiring.

Covers the registries in isolation, their wiring onto built systems,
commit-boundary schedule semantics (including kernel equivalence and
fast-forward interaction), hardware-faithful knob routing through the
register file, and the scenario-file front end.
"""

from __future__ import annotations

import pytest

from repro.control import (
    Comparison,
    KnobError,
    KnobRegistry,
    ProbeError,
    ProbeRegistry,
    ScheduleError,
)
from repro.realm import RegionConfig
from repro.realm import register_file as rf
from repro.scenario import (
    ScenarioError,
    attach_traffic,
    build_system,
    install_control,
    loads,
    run_campaign,
    validate,
)
from repro.sim import Channel, Simulator, Tracer
from repro.system import SystemBuilder


# ----------------------------------------------------------------------
# probe registry
# ----------------------------------------------------------------------
def test_probe_register_read_and_order():
    reg = ProbeRegistry()
    reg.register("a.x", lambda: 1)
    reg.register("a.y", lambda: 2, kind="gauge")
    reg.register("b.x", lambda: 3, kind="flag")
    assert reg.read("a.y") == 2
    assert reg.paths() == ["a.x", "a.y", "b.x"]
    assert reg.sample() == {"a.x": 1, "a.y": 2, "b.x": 3}
    assert reg.sample("a.*") == {"a.x": 1, "a.y": 2}
    assert reg.match("*.x") == ["a.x", "b.x"]


def test_probe_errors():
    reg = ProbeRegistry()
    reg.register("a.x", lambda: 1)
    with pytest.raises(ProbeError, match="registered twice"):
        reg.register("a.x", lambda: 2)
    with pytest.raises(ProbeError, match="no probe matches"):
        reg.read("a.z")
    with pytest.raises(ProbeError, match="no probe matches"):
        reg.match("c.*")
    with pytest.raises(ProbeError, match="malformed"):
        reg.register("a..x", lambda: 1)
    with pytest.raises(ProbeError, match="unknown probe kind"):
        reg.register("a.k", lambda: 1, kind="rate")


def test_probe_channel_source_counters_and_events(sim):
    reg = ProbeRegistry()
    ch = Channel(sim, "data")
    reg.register_channel("port.m.data", ch)
    tr = Tracer(sim)
    assert tr.watch_probes(reg, "port.m.*") == ["port.m.data"]
    ch.send("x")
    sim.step()
    ch.recv()
    assert reg.read("port.m.data.sent") == 1
    assert reg.read("port.m.data.recv") == 1
    assert [e.kind for e in tr.events()] == ["send", "recv"]
    reg.detach("port.m.*", tr)
    ch.send("y")
    assert len(tr) == 2  # no longer attached
    with pytest.raises(ProbeError, match="no probe event source"):
        reg.attach("port.q.*", tr)


def test_probe_detach_mirrors_attach(sim):
    """detach returns the matched paths and raises on a zero-match
    pattern, exactly like attach — a typo'd detach can no longer leave
    a tracer silently attached."""
    reg = ProbeRegistry()
    ch_a = Channel(sim, "data")
    ch_b = Channel(sim, "data")
    reg.register_channel("port.a.data", ch_a)
    reg.register_channel("port.b.data", ch_b)
    tr = Tracer(sim)
    assert reg.attach("port.*.data", tr) == ["port.a.data", "port.b.data"]
    assert reg.detach("port.*.data", tr) == ["port.a.data", "port.b.data"]
    ch_a.send("x")
    assert len(tr) == 0  # actually detached
    with pytest.raises(ProbeError, match="no probe event source"):
        reg.detach("port.typo.*", tr)
    # Exact (non-glob) paths resolve too, and re-attach round-trips.
    assert reg.attach("port.a.data", tr) == ["port.a.data"]
    assert reg.detach("port.a.data", tr) == ["port.a.data"]


def test_register_channel_is_atomic(sim):
    """A sub-path collision aborts register_channel before any probe or
    source is published — no half-registered channel survives."""
    reg = ProbeRegistry()
    reg.register("port.m.data.occupancy", lambda: 0, doc="squatter")
    ch = Channel(sim, "data")
    with pytest.raises(ProbeError, match="registered twice"):
        reg.register_channel("port.m.data", ch)
    assert reg.source_paths() == []
    # None of the sibling sub-probes leaked in before the clash.
    assert reg.paths() == ["port.m.data.occupancy"]
    # The registry is still fully usable under a different path.
    assert reg.attach  # sanity: object not corrupted
    reg.register_channel("port.n.data", ch)
    assert reg.source_paths() == ["port.n.data"]


# ----------------------------------------------------------------------
# knob registry
# ----------------------------------------------------------------------
def test_knob_types_and_errors():
    reg = KnobRegistry()
    box = {"v": 0, "b": False}
    reg.register("k.int", lambda: box["v"],
                 lambda v: box.__setitem__("v", v))
    reg.register("k.bool", lambda: box["b"],
                 lambda v: box.__setitem__("b", v), kind="bool")
    reg.set("k.int", 5)
    reg.set("k.bool", True)
    assert box == {"v": 5, "b": True}
    with pytest.raises(KnobError, match="takes an int"):
        reg.set("k.int", True)  # bool is not an int here
    with pytest.raises(KnobError, match="takes a bool"):
        reg.set("k.bool", 1)
    with pytest.raises(KnobError, match="no knob"):
        reg.set("k.missing", 1)
    with pytest.raises(KnobError, match="registered twice"):
        reg.register("k.int", lambda: 0, lambda v: None)


# ----------------------------------------------------------------------
# trigger expressions
# ----------------------------------------------------------------------
@pytest.mark.parametrize("text,expected", [
    ("a.b > 5", ("a.b", ">", 5)),
    ("a.b>=0x10", ("a.b", ">=", 16)),
    ("a.b != -1", ("a.b", "!=", -1)),
    ("  a.b == 3 ", ("a.b", "==", 3)),
])
def test_comparison_parse(text, expected):
    cmp = Comparison.parse(text)
    assert (cmp.path, cmp.op, cmp.value) == expected


@pytest.mark.parametrize("text", ["a.b", "> 5", "a.b > x", "a.b ~ 5", ""])
def test_comparison_parse_rejects(text):
    with pytest.raises(ScheduleError):
        Comparison.parse(text)


# ----------------------------------------------------------------------
# schedule engine on built systems
# ----------------------------------------------------------------------
def build_two_manager_system(active_set=True):
    return (
        SystemBuilder(name="cp", active_set=active_set)
        .add_manager("core", protect=True, granularity=8, regions=[
            RegionConfig(0x0, 0x10000, 4096, 1000)
        ])
        .add_manager("dma")
        .add_sram("mem", base=0x0, size=0x10000)
        .build()
    )


def test_schedule_at_fires_on_the_commit_boundary():
    system = build_two_manager_system()
    seen = []
    system.control.at(10, lambda c: seen.append((c, system.sim.cycle)))
    system.sim.run(20)
    assert seen == [(10, 11)]  # after the commit of cycle 10


def test_schedule_every_with_start_until_and_once():
    system = build_two_manager_system()
    cp = system.control
    ticks, capped = [], []
    cp.every(10, lambda c: ticks.append(c), label="tick")
    cp.every(10, lambda c: capped.append(c), start=5, until=25, label="cap")
    once = cp.every(10, lambda c: None, once=True, label="one")
    system.sim.run(60)
    assert ticks == [10, 20, 30, 40, 50]
    assert capped == [5, 15, 25]
    assert once.fired == 1 and not once.active


def test_schedule_when_trigger_and_once():
    system = build_two_manager_system()
    cp = system.control
    drv = system.add_driver("core")
    rule = cp.every(
        5,
        when="driver.core.completed >= 2",
        set={"realm.core.region0.budget_bytes": 512},
        once=True,
        label="shrink",
    )
    drv.read(0x0, beats=2)
    drv.read(0x40, beats=2)
    system.run_until_idle()
    system.sim.run(20)
    assert rule.fired == 1
    assert rule.evaluations > 1  # polled before the condition held
    assert cp.get("realm.core.region0.budget_bytes") == 512


def test_schedule_rejects_bad_rules():
    system = build_two_manager_system()
    cp = system.control
    with pytest.raises(ScheduleError, match="no actions"):
        cp.at(5, label="empty")
    with pytest.raises(KnobError):
        cp.at(5, set={"realm.core.region9.budget_bytes": 1}, label="bad")
    with pytest.raises(ProbeError):
        cp.every(5, sample=["nothing.*"], label="nosuch")
    cp.at(5, lambda c: None, label="dup")
    with pytest.raises(ScheduleError, match="duplicate"):
        cp.at(6, lambda c: None, label="dup")
    # Kind mismatches on static set-values fail at install, not mid-run.
    with pytest.raises(KnobError, match="takes an int"):
        cp.at(5, set={"realm.core.region0.budget_bytes": True}, label="kind")


def test_register_semantics_rejection_surfaces_as_knob_error():
    system = build_two_manager_system()
    # Well-typed but refused by config validation (granularity must be a
    # positive power of two within the unit's limits).
    with pytest.raises(KnobError, match="rejected"):
        system.control.set("realm.core.granularity", 0)


def test_schedule_rules_survive_a_simulator_reset():
    system = build_two_manager_system()
    cp = system.control
    rule = cp.every(10, sample=["port.core.ar.sent"], label="probes")
    system.sim.run(35)
    assert rule.fired == 3
    system.sim.reset()
    assert rule.fired == 0 and rule.active
    assert cp.schedule.series["probes"] == []
    system.sim.run(35)
    assert rule.fired == 3
    assert [e["cycle"] for e in cp.schedule.series["probes"]] == [10, 20, 30]


def test_hook_rescheduling_for_a_past_cycle_defers_to_the_next_boundary():
    sim = Simulator()
    fired = []

    def reschedule(committed):
        fired.append(committed)
        if len(fired) < 3:
            sim.call_at(0, reschedule)  # already committed: next boundary

    sim.call_at(0, reschedule)
    sim.run(10)  # would hang forever if drained at one boundary
    assert fired == [0, 1, 2]


def test_sampler_is_kernel_identical_and_fast_forward_safe():
    """A sampler over a quiescent system must record the same series on
    both kernels, and must not stop the active kernel fast-forwarding."""
    series = {}
    for active_set in (True, False):
        system = build_two_manager_system(active_set=active_set)
        drv = system.add_driver("core")
        cp = system.control
        cp.sampler(
            ["realm.core.region0.total_bytes", "port.core.ar.sent"],
            every=100,
        )
        drv.read(0x0, beats=4)
        system.sim.run(1000)
        series[active_set] = cp.schedule.series["probes"]
    assert series[True] == series[False]
    # The boundary of cycle 1000 belongs to step 1000, which a 1000-cycle
    # run does not execute — the last sample lands at 900.
    assert [e["cycle"] for e in series[True]] == list(range(100, 1000, 100))


def test_hooks_do_not_block_fast_forward():
    system = build_two_manager_system(active_set=True)
    system.control.sampler(["port.core.ar.sent"], every=200)
    system.sim.run(1000)
    # The stretches between samples are still jumped, not stepped.
    assert system.sim.cycles_fast_forwarded >= 700


# ----------------------------------------------------------------------
# knob routing through the register file
# ----------------------------------------------------------------------
def test_realm_knob_write_lands_on_the_register_state():
    """A knob-path write and a raw regfile write must produce the exact
    same register state (satellite: hardware-faithful routing)."""
    via_knob = build_two_manager_system()
    via_raw = build_two_manager_system()
    via_knob.control.set("realm.core.region0.budget_bytes", 2048)
    via_knob.control.set("realm.core.granularity", 4)
    base = rf.unit_base(0)
    via_raw.regfile.write(0x0, 0x51, tid=0x51)  # claim, like the control plane
    via_raw.regfile.write(base + rf.region_base(0) + rf.BUDGET, 2048,
                          tid=0x51)
    via_raw.regfile.write(base + rf.GRANULARITY, 4, tid=0x51)
    via_knob.sim.run(10)  # drain + apply the intrusive granularity change
    via_raw.sim.run(10)
    for offset in (
        base + rf.CTRL,
        base + rf.GRANULARITY,
        base + rf.region_base(0) + rf.BUDGET,
        base + rf.region_base(0) + rf.PERIOD,
        base + rf.region_base(0) + rf.REGION_BASE,
        base + rf.region_base(0) + rf.REGION_SIZE,
    ):
        assert via_knob.regfile._read(offset) == via_raw.regfile._read(offset)


def test_knob_write_respects_foreign_bus_guard_owner():
    system = build_two_manager_system()
    system.regfile.write(0x0, 0x42, tid=0x42)  # someone else claims first
    with pytest.raises(KnobError, match="bus guard"):
        system.control.set("realm.core.region0.budget_bytes", 64)
    # Reads through the regfile are equally guarded.
    with pytest.raises(KnobError):
        system.control.set("realm.core.ctrl.regulation", True)


def test_traffic_and_interconnect_knobs(sim):
    from repro.traffic import BandwidthHog

    system = (
        SystemBuilder(sim)
        .with_crossbar(qos_arbitration=True)
        .add_manager("a")
        .add_manager("b")
        .add_sram("mem", base=0x0, size=0x1000)
        .build()
    )
    hog = system.attach("a", lambda port: BandwidthHog(port, window=0x1000))
    cp = system.control
    assert cp.get("traffic.a.enabled") is True
    cp.set("traffic.a.enabled", False)
    assert hog.enabled is False
    cp.set("traffic.a.max_outstanding", 7)
    assert hog.max_outstanding == 7
    assert cp.get("xbar.a.qos") == -1
    cp.set("xbar.a.qos", 12)
    assert system.interconnect.qos_override[0] == 12
    cp.set("xbar.a.qos", -1)
    assert 0 not in system.interconnect.qos_override


# ----------------------------------------------------------------------
# builder publication
# ----------------------------------------------------------------------
def test_built_system_publishes_expected_namespaces():
    system = build_two_manager_system()
    paths = system.control.probes.paths()
    assert "port.core.aw.sent" in paths
    assert "realm.core.isolated" in paths
    assert "realm.core.region0.budget_remaining" in paths
    assert "xbar.aw_forwarded" in paths
    assert "mem.mem.reads_served" in paths
    knobs = system.control.knobs.paths()
    assert "realm.core.region0.budget_bytes" in knobs
    assert "realm.core.ctrl.regulation" in knobs
    assert all(not k.startswith("realm.dma") for k in knobs)  # unprotected


def test_noc_router_probes(sim):
    system = (
        SystemBuilder(sim)
        .with_noc(3, 2)
        .add_manager("a")
        .add_sram("mem", base=0x0, size=0x1000)
        .build()
    )
    paths = system.control.probes.paths()
    for x in range(3):
        for y in range(2):
            assert f"noc.r{x}c{y}.occupancy" in paths
    assert system.control.read("noc.flits") == 0


def test_control_can_be_disabled():
    system = (
        SystemBuilder(control=False)
        .add_manager("m")
        .add_sram("mem", base=0x0, size=0x1000)
        .build()
    )
    assert system.control is None


# ----------------------------------------------------------------------
# scenario front end
# ----------------------------------------------------------------------
MINIMAL = """
[scenario]
name = "ctl"
seed = 1

[run]
horizon = 3000

[topology]
[[topology.managers]]
name = "core"
protect = true
granularity = 8
[[topology.managers.regions]]
base = 0x0
size = 0x10000
budget_bytes = 512
period_cycles = 500

[[topology.memories]]
name = "mem"
kind = "sram"
base = 0x0
size = 0x10000

[traffic.core]
kind = "core"
pattern = "sequential"
n_accesses = 50
gap = 4
"""


def test_scenario_probes_and_schedule_round_trip():
    text = MINIMAL + """
[probes]
every = 250
sample = ["realm.core.region0.total_bytes"]

[[schedule]]
label = "bump"
at = 1000
[schedule.set]
"realm.core.region0.budget_bytes" = 1024

[[schedule]]
label = "advisor"
every = 500
[schedule.advise]
managers = ["core"]
period_cycles = 500
"""
    spec = loads(text, fmt="toml")
    assert validate(spec.to_dict()) == spec
    result = run_campaign(spec)
    obs = result.points[0].observables
    fired = obs["control"]["fired"]
    assert fired["bump"] == 1
    # Boundaries 250..2750: the horizon's own boundary is never stepped.
    assert fired["probes"] == (3000 - 1) // 250
    assert fired["advisor"] == (3000 - 1) // 500
    series = obs["control"]["series"]["probes"]
    assert [entry["cycle"] for entry in series][:3] == [250, 500, 750]
    assert result.points[0].rules_fired == fired
    assert result.points[0].timeseries["probes"] == series


def test_scenario_schedule_is_kernel_identical():
    text = MINIMAL + """
[probes]
every = 250
sample = ["realm.core.region0.*", "port.core.*.sent"]

[[schedule]]
label = "squeeze"
every = 700
[schedule.set]
"realm.core.region0.budget_bytes" = 128
"""
    spec = loads(text, fmt="toml")
    active = run_campaign(spec).digest()
    naive = run_campaign(spec, active_set=False).digest()
    assert active == naive


def test_scenario_campaign_can_disable_a_rule():
    text = MINIMAL + """
[[schedule]]
label = "bump"
at = 100
[schedule.set]
"realm.core.region0.budget_bytes" = 4096

[campaign]
[[campaign.points]]
label = "on"
[[campaign.points]]
label = "off"
[campaign.points.set]
"schedule.bump.enabled" = false
"""
    result = run_campaign(loads(text, fmt="toml"))
    by_label = {p.label: p for p in result.points}
    assert by_label["on"].rules_fired == {"bump": 1}
    assert by_label["off"].rules_fired == {}


@pytest.mark.parametrize("snippet,message", [
    ("[probes]\nevery = 10\n", r"without any `sample`"),
    ('[probes]\nsample = ["x"]\n', r"probes\.every"),
    ('[[schedule]]\nlabel = "a"\n[schedule.set]\nx = 1\n',
     r"give a trigger"),
    ('[[schedule]]\nlabel = "a"\nat = 5\nevery = 5\n[schedule.set]\nx = 1\n',
     r"exactly one trigger"),
    ('[[schedule]]\nlabel = "a"\nat = 5\nonce = true\n[schedule.set]\nx = 1\n',
     r"`once` is implied"),
    ('[[schedule]]\nlabel = "a"\nat = 5\n', r"no actions"),
    ('[[schedule]]\nlabel = "a"\nat = 5\nwhen = "x ~ 1"\n'
     '[schedule.set]\nx = 1\n', r"when"),
    ('[[schedule]]\nlabel = "a"\nevery = 5\nuntil = 2\n'
     '[schedule.set]\nx = 1\n', r"until precedes"),
    ('[[schedule]]\nlabel = "a"\nat = 5\n[schedule.set]\nx = 1.5\n',
     r"integers or booleans"),
    ('[[schedule]]\nlabel = "a"\nat = 5\n[schedule.advise]\n'
     'managers = ["ghost"]\nperiod_cycles = 100\n', r"advise names"),
    ('[[schedule]]\nlabel = "a"\nat = 5\n[schedule.advise]\n'
     'managers = ["core"]\nperiod_cycles = 100\nregion = 9\n',
     r"region 9 out of range"),
])
def test_scenario_control_validation_errors(snippet, message):
    with pytest.raises(ScenarioError, match=message):
        loads(MINIMAL + snippet, fmt="toml")


def test_scenario_unknown_knob_and_probe_paths_fail_precisely():
    bad_knob = loads(MINIMAL + """
[[schedule]]
label = "a"
at = 5
[schedule.set]
"realm.core.region7.budget_bytes" = 1
""", fmt="toml")
    with pytest.raises(ScenarioError, match="control plane"):
        run_campaign(bad_knob)
    bad_probe = loads(MINIMAL + """
[probes]
every = 10
sample = ["realm.ghost.*"]
""", fmt="toml")
    with pytest.raises(ScenarioError, match="control plane"):
        run_campaign(bad_probe)


def test_install_control_noop_without_sections():
    spec = loads(MINIMAL, fmt="toml")
    system = build_system(spec)
    attach_traffic(system, spec)
    install_control(system, spec)
    assert not system.control.configured
    system.sim.run(100)
    obs = run_campaign(spec).points[0].observables
    assert "control" not in obs


# ----------------------------------------------------------------------
# event-triggered (edge) rules
# ----------------------------------------------------------------------
def _edge_plane():
    from repro.control import ControlPlane

    sim = Simulator()
    plane = ControlPlane(sim)
    box = [0]
    plane.probes.register("t.v", lambda: box[0])
    return sim, plane, box


def test_event_rule_fires_on_rising_edges_only():
    sim, plane, box = _edge_plane()
    fired = []
    rule = plane.schedule.on("t.v >= 5", action=fired.append)
    sim.run(3)
    assert fired == []  # condition never held
    box[0] = 7
    sim.run(2)
    assert fired == [3]  # one firing at the crossing, none while held
    box[0] = 0
    sim.run(2)
    box[0] = 9
    sim.run(2)
    assert fired == [3, 7]  # a second crossing fires again
    assert rule.fired == 2
    assert rule.evaluations == 9  # every commit boundary so far


def test_event_rule_once_start_until():
    sim, plane, box = _edge_plane()
    box[0] = 10  # already true before the run
    once = plane.schedule.on("t.v >= 5", action=lambda c: None,
                             once=True, label="once")
    late = plane.schedule.on("t.v >= 5", action=lambda c: None,
                             start=4, label="late")
    bounded = plane.schedule.on("t.v >= 5", action=lambda c: None,
                                until=2, label="bounded")
    sim.run(8)
    # Already-true at the first evaluation counts as a crossing.
    assert once.fired == 1 and not once.active
    assert late.fired == 1 and late.evaluations == 4  # cycles 4..7
    assert bounded.fired == 1 and not bounded.active
    assert bounded.evaluations == 3  # cycles 0..2 inclusive


def test_event_rule_validation_errors():
    sim, plane, _ = _edge_plane()
    with pytest.raises(ScheduleError, match="start must be"):
        plane.schedule.on("t.v >= 1", action=lambda c: None, start=-1)
    with pytest.raises(ScheduleError, match="until precedes"):
        plane.schedule.on("t.v >= 1", action=lambda c: None,
                          start=10, until=5, label="x")
    with pytest.raises(ScheduleError, match="no actions"):
        plane.schedule.on("t.v >= 1")
    # Rejected rules leave no residue: the label is free again and
    # nothing half-installed survives a reset.
    assert plane.schedule.rules == []
    plane.schedule.on("t.v >= 1", action=lambda c: None, label="x")
    sim.reset()
    assert [r.label for r in plane.schedule.rules] == ["x"]


def test_event_rule_scenario_round_trip_and_kernel_equivalence():
    text = MINIMAL + """
[[schedule]]
label = "clamp"
when = "realm.core.region0.total_bytes >= 100"
once = true
[schedule.set]
"realm.core.region0.budget_bytes" = 16
"""
    spec = loads(text, fmt="toml")
    assert validate(spec.to_dict()) == spec  # when-only rules round-trip
    active = run_campaign(spec)
    naive = run_campaign(spec, active_set=False)
    per_beat = run_campaign(spec, batched=False)
    assert active.digest() == naive.digest() == per_beat.digest()
    point = active.points[0]
    assert point.rules_fired == {"clamp": 1}
    # The clamp bit: the tightened budget depletes and engages budget
    # isolation, which holds address beats at the unit's ingress.
    realms = point.observables["realms"]["core"]
    assert realms["blocked_beats"] > 0


def test_event_rule_state_survives_checkpoint():
    from repro.snapshot import capture_simulator, restore_simulator

    def build():
        sim, plane, box = _edge_plane()
        fired = []
        plane.schedule.on("t.v >= 5", action=fired.append, label="edge")
        return sim, plane, box, fired

    sim, plane, box, fired = build()
    box[0] = 7
    sim.run(4)  # crossing at boundary 0; prev is now True
    state = capture_simulator(sim)

    sim2, plane2, box2, fired2 = build()
    box2[0] = 7
    restore_simulator(sim2, state)
    rule = plane2.schedule.rules[0]
    assert rule.prev is True and rule.fired == 1
    sim2.run(3)
    assert fired2 == []  # no re-fire: the edge state was restored
    box2[0] = 0
    sim2.run(1)
    box2[0] = 8
    sim2.run(2)
    assert len(fired2) == 1  # fresh crossing after the restore
