"""Tests for the Table II area model and the Table I decomposition."""

import pytest

from repro.area import (
    PAPER_BLOCKS_KGE,
    TABLE_I_N_UNITS,
    TABLE_I_PARAMS,
    TABLE_II,
    area_breakdown,
    cheshire_decomposition,
    config_regfile_area,
    format_table,
    realm_overhead_percent,
    realm_unit_area,
    sub_blocks,
    system_area,
)
from repro.realm import RealmUnitParams


def test_table_ii_has_all_eleven_sub_blocks():
    assert len(TABLE_II) == 11
    names = {b.name for b in TABLE_II}
    assert "Burst Splitter" in names
    assert "Bus Guard" in names
    assert "Tracking Counters" in names


def test_sub_blocks_filter():
    config = sub_blocks("config")
    unit = sub_blocks("unit")
    assert len(config) + len(unit) == len(TABLE_II)
    assert all(b.group == "config" for b in config)


def test_unit_area_close_to_paper_total():
    """3 Table-I-configured units should land near the paper's 83.6 kGE."""
    total_kge = realm_unit_area(TABLE_I_PARAMS) * TABLE_I_N_UNITS / 1000
    assert 0.8 * 83.6 < total_kge < 1.2 * 83.6


def test_area_grows_with_each_parameter():
    base = RealmUnitParams()
    assert realm_unit_area(
        RealmUnitParams(addr_width=64)
    ) > realm_unit_area(RealmUnitParams(addr_width=32))
    assert realm_unit_area(
        RealmUnitParams(max_pending=16)
    ) > realm_unit_area(RealmUnitParams(max_pending=2))
    assert realm_unit_area(
        RealmUnitParams(write_buffer_depth=64)
    ) > realm_unit_area(RealmUnitParams(write_buffer_depth=16))
    assert realm_unit_area(
        RealmUnitParams(n_regions=4)
    ) > realm_unit_area(RealmUnitParams(n_regions=1))


def test_splitter_disabled_saves_area():
    with_split = realm_unit_area(RealmUnitParams(splitter_present=True))
    without = realm_unit_area(RealmUnitParams(splitter_present=False))
    # The burst splitter dominates the unit (Table II constants).
    assert without < with_split * 0.6


def test_write_buffer_absent_saves_area():
    with_buf = realm_unit_area(RealmUnitParams(write_buffer_present=True))
    without = realm_unit_area(RealmUnitParams(write_buffer_present=False))
    assert without < with_buf


def test_config_regfile_scales_with_units_and_regions():
    p1 = RealmUnitParams(n_regions=1)
    p2 = RealmUnitParams(n_regions=2)
    assert config_regfile_area(p2, 3) > config_regfile_area(p1, 3)
    assert config_regfile_area(p1, 4) > config_regfile_area(p1, 2)
    with pytest.raises(ValueError):
        config_regfile_area(p1, -1)


def test_system_area_components_sum():
    out = system_area(TABLE_I_PARAMS, 3)
    assert out["total"] == pytest.approx(
        out["realm_units"] + out["config_regfile"]
    )


def test_overhead_percent_near_paper():
    """Paper: 2.45% area overhead on Cheshire."""
    overhead = realm_overhead_percent()
    assert 1.8 < overhead < 3.2


def test_decomposition_rows_and_percentages():
    rows = cheshire_decomposition()
    assert rows[0].unit == "SoC"
    assert rows[0].percent == 100.0
    names = [r.unit for r in rows]
    assert "3 RT Units" in names and "RT CFG" in names
    model_rows = [r for r in rows if r.source == "model"]
    assert len(model_rows) == 2
    # Percentages of the parts sum to ~100.
    total_pct = sum(r.percent for r in rows[1:])
    assert total_pct == pytest.approx(100.0, abs=0.5)


def test_decomposition_matches_published_non_realm_areas():
    rows = {r.unit: r for r in cheshire_decomposition()}
    assert rows["CVA6"].area_kge == PAPER_BLOCKS_KGE["CVA6"]
    assert rows["LLC"].area_kge == PAPER_BLOCKS_KGE["LLC"]


def test_format_table_renders():
    text = format_table(cheshire_decomposition())
    assert "CVA6" in text and "kGE" in text


def test_area_breakdown_covers_all_blocks():
    out = area_breakdown(TABLE_I_PARAMS)
    assert len(out) == len(TABLE_II)
    assert out["Burst Splitter"] > out["Write Buffer"]
