"""Tests for the declarative SystemBuilder."""

import pytest

from repro.axi.types import Resp
from repro.baselines import AbuRegulator
from repro.realm import RegionConfig
from repro.sim import Simulator
from repro.system import SystemBuilder


def test_direct_system_round_trip():
    system = (
        SystemBuilder()
        .add_manager("mgr", driver=True)
        .add_sram("mem", base=0, size=0x1000)
        .build()
    )
    # One manager + one memory with no explicit flavor wires directly.
    assert system.interconnect is None
    drv = system.driver("mgr")
    drv.write(0x10, b"\xaa" * 8)
    op = drv.read(0x10)
    system.run_until_idle()
    assert op.rdata == b"\xaa" * 8


def test_crossbar_decode_error():
    system = (
        SystemBuilder()
        .with_crossbar()
        .add_manager("m0", driver=True)
        .add_sram("mem", base=0, size=0x1000)
        .build()
    )
    op = system.driver("m0").read(0x8000)  # outside every range
    system.run_until_idle()
    assert op.resp == Resp.DECERR


def test_realm_declared_with_regulation():
    system = (
        SystemBuilder()
        .add_manager(
            "mgr",
            granularity=4,
            regions=[RegionConfig(base=0, size=0x1000,
                                  budget_bytes=64, period_cycles=400)],
            driver=True,
        )
        .add_sram("mem", base=0, size=0x1000)
        .build()
    )
    # protect is implied by regulation arguments.
    realm = system.realm("mgr")
    system.sim.run(5)  # drain + apply the queued reconfiguration
    assert realm.granularity == 4
    assert realm.config.regions[0].budget_bytes == 64
    # The regfile/bus-guard pair exists whenever REALM units do.
    assert system.regfile is not None and system.bus_guard is not None
    op = system.driver("mgr").read(0x0, beats=8)
    system.run_until_idle()
    assert op.resp == Resp.OKAY
    assert system.memory("mem").reads_served == 2  # split into 4-beat halves


def test_custom_regulator_factory():
    system = (
        SystemBuilder()
        .with_crossbar()
        .add_manager(
            "mgr",
            regulator=lambda up, down: AbuRegulator(up, down, 1 << 40, 1 << 40),
            driver=True,
        )
        .add_sram("mem", base=0, size=0x1000)
        .build()
    )
    assert "mgr" in system.regulators
    assert not system.realms
    op = system.driver("mgr").read(0x0)
    system.run_until_idle()
    assert op.resp == Resp.OKAY


def test_noc_flavor_with_auto_placement():
    system = (
        SystemBuilder()
        .with_noc(3, 3)
        .add_manager("m0", driver=True)
        .add_manager("m1", driver=True)
        .add_sram("mem", base=0, size=0x1000)
        .build()
    )
    ops = [system.driver(m).read(0x20) for m in ("m0", "m1")]
    system.run_until_idle(max_cycles=10_000)
    assert all(op.resp == Resp.OKAY for op in ops)


def test_multiple_memories_and_address_map():
    system = (
        SystemBuilder()
        .with_crossbar()
        .add_manager("mgr", driver=True)
        .add_sram("a", base=0x0, size=0x1000)
        .add_sram("b", base=0x10000, size=0x1000)
        .build()
    )
    drv = system.driver("mgr")
    drv.write(0x10, b"a" * 8)
    drv.write(0x10010, b"b" * 8)
    system.run_until_idle()
    assert system.memory("a").writes_served == 1
    assert system.memory("b").writes_served == 1


def test_cached_dram_with_warm_cache():
    system = (
        SystemBuilder()
        .with_crossbar()
        .add_manager("mgr", driver=True)
        .add_cached_dram("dram", base=0x1000, size=0x4000)
        .build()
    )
    system.warm_cache(0x1000, 0x100)
    op = system.driver("mgr").read(0x1000)
    system.run_until_idle()
    assert op.resp == Resp.OKAY
    llc = system.cache("llc")
    assert llc.hits >= 1 and llc.misses == 0  # warm line, no DRAM trip


def test_regulator_with_realm_arguments_rejected():
    # A regulation kwarg implies a REALM unit; combining it with a custom
    # regulator must fail loudly instead of silently dropping the factory.
    builder = SystemBuilder()
    with pytest.raises(ValueError):
        builder.add_manager(
            "mgr",
            regulator=lambda up, down: AbuRegulator(up, down, 1024, 1000),
            granularity=1,
        )


def test_duplicate_names_rejected():
    builder = SystemBuilder().add_manager("m")
    with pytest.raises(ValueError):
        builder.add_manager("m")
    builder.add_sram("mem", base=0, size=0x100)
    with pytest.raises(ValueError):
        builder.add_sram("mem", base=0x1000, size=0x100)


def test_direct_flavor_requires_one_to_one():
    builder = (
        SystemBuilder()
        .with_direct()
        .add_manager("a")
        .add_manager("b")
        .add_sram("mem", base=0, size=0x100)
    )
    with pytest.raises(ValueError):
        builder.build()


def test_build_twice_rejected():
    builder = (
        SystemBuilder()
        .add_manager("m")
        .add_sram("mem", base=0, size=0x100)
    )
    builder.build()
    with pytest.raises(Exception):
        builder.build()


def test_builder_reuses_provided_simulator(sim):
    system = (
        SystemBuilder(sim)
        .add_manager("m", driver=True)
        .add_sram("mem", base=0, size=0x100)
        .build()
    )
    assert system.sim is sim
