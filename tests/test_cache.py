"""Unit tests for the LLC cache model (front driver, DRAM behind)."""

import pytest

from repro.axi import AxiBundle, Resp
from repro.mem import CacheLLC, DramModel, DramTiming, SramMemory
from repro.sim import Simulator
from repro.traffic.driver import ManagerDriver


def make(line_bytes=64, ways=2, capacity=4 * 1024, hit_latency=1,
         dram_size=1 << 20):
    sim = Simulator()
    front = AxiBundle(sim, "llc.front")
    back = AxiBundle(sim, "llc.back")
    llc = sim.add(
        CacheLLC(front, back, line_bytes=line_bytes, ways=ways,
                 capacity=capacity, hit_latency=hit_latency)
    )
    dram = sim.add(DramModel(back, base=0, size=dram_size))
    drv = sim.add(ManagerDriver(front))
    return sim, llc, dram, drv


def finish(sim, drv):
    sim.run_until(lambda: drv.idle, max_cycles=200_000, what="driver")


def test_read_miss_then_hit():
    sim, llc, dram, drv = make()
    dram.store.write(0x100, bytes(range(8)))
    op1 = drv.read(0x100)
    op2 = drv.read(0x100)
    finish(sim, drv)
    assert op1.rdata == bytes(range(8))
    assert op2.rdata == bytes(range(8))
    assert llc.misses == 1
    assert llc.hits == 1
    assert op2.latency < op1.latency


def test_write_allocate_and_readback():
    sim, llc, dram, drv = make()
    drv.write(0x200, bytes([0xAA] * 8))
    op = drv.read(0x200)
    finish(sim, drv)
    assert op.rdata == bytes([0xAA] * 8)
    assert llc.misses == 1  # write allocated the line
    assert llc.refills == 1


def test_dirty_eviction_written_back_to_dram():
    # 2 ways, 64 B lines, 4 KiB capacity -> 32 sets; addresses 4 KiB apart
    # (line index + 32 sets) map to the same set.
    sim, llc, dram, drv = make(ways=2, capacity=4 * 1024)
    stride = 4 * 1024
    drv.write(0x0, bytes([0x11] * 8))  # dirty line in set 0
    drv.write(stride, bytes([0x22] * 8))  # second way of set 0
    drv.write(2 * stride, bytes([0x33] * 8))  # evicts the first line
    finish(sim, drv)
    assert llc.writebacks == 1
    assert dram.store.read(0x0, 8) == bytes([0x11] * 8)
    # And reading it again refetches the written-back data.
    op = drv.read(0x0)
    finish(sim, drv)
    assert op.rdata == bytes([0x11] * 8)


def test_clean_eviction_no_writeback():
    sim, llc, dram, drv = make(ways=2, capacity=4 * 1024)
    stride = 4 * 1024
    for i in range(3):
        drv.read(i * stride)
    finish(sim, drv)
    assert llc.writebacks == 0
    assert llc.refills == 3


def test_lru_replacement():
    sim, llc, dram, drv = make(ways=2, capacity=4 * 1024)
    stride = 4 * 1024
    drv.read(0x0)  # A
    drv.read(stride)  # B
    drv.read(0x0)  # touch A -> B becomes LRU
    drv.read(2 * stride)  # C evicts B
    op = drv.read(0x0)  # A must still be resident
    finish(sim, drv)
    assert llc.contains(0x0)
    assert not llc.contains(stride)
    assert llc.contains(2 * stride)


def test_burst_read_within_line_hits_after_warm():
    sim, llc, dram, drv = make()
    dram.store.write(0x0, bytes(range(64)))
    drv.read(0x0, beats=8)  # warms the line (1 miss, then hits)
    op = drv.read(0x0, beats=8)
    finish(sim, drv)
    assert op.rdata == bytes(range(64))
    assert llc.misses == 1


def test_burst_across_lines():
    sim, llc, dram, drv = make()
    dram.store.write(0x0, bytes(i & 0xFF for i in range(256)))
    op = drv.read(0x0, beats=32)  # 256 B = 4 lines
    finish(sim, drv)
    assert op.rdata == bytes(i & 0xFF for i in range(256))
    assert llc.misses == 4


def test_hot_cache_streams_one_beat_per_cycle():
    sim, llc, dram, drv = make(capacity=16 * 1024)
    drv.read(0x0, beats=32)  # warm 4 lines
    op1 = drv.read(0x0, beats=1)
    op2 = drv.read(0x0, beats=32)
    finish(sim, drv)
    assert op2.latency - op1.latency == 31


def test_install_line_prewarm():
    sim, llc, dram, drv = make()
    llc.install_line(0x0, bytes([0x5A] * 64))
    op = drv.read(0x0)
    finish(sim, drv)
    assert op.rdata == bytes([0x5A] * 8)
    assert llc.misses == 0
    assert llc.hits == 1


def test_resident_lines_counter():
    sim, llc, dram, drv = make()
    llc.install_line(0x0, bytes(64))
    llc.install_line(0x40, bytes(64))
    assert llc.resident_lines == 2


def test_capacity_validation():
    sim = Simulator()
    f, b = AxiBundle(sim, "f"), AxiBundle(sim, "b")
    with pytest.raises(ValueError):
        CacheLLC(f, b, line_bytes=64, ways=3, capacity=1000)
    with pytest.raises(ValueError):
        llc = CacheLLC(f, b, line_bytes=60, ways=2, capacity=4 * 1024)


def test_install_line_validates_length():
    sim, llc, dram, drv = make()
    with pytest.raises(ValueError):
        llc.install_line(0x0, bytes(10))


def test_write_partial_strobe_merge():
    sim, llc, dram, drv = make()
    dram.store.write(0x0, bytes([0xFF] * 8))
    drv.read(0x0)  # warm
    finish(sim, drv)
    # Directly exercise a strobed write through the driver data path:
    # write full beat then verify merge happened in the line.
    drv.write(0x0, bytes([0x00] * 8))
    op = drv.read(0x0)
    finish(sim, drv)
    assert op.rdata == bytes(8)
