"""Checkpoint/restore: codec units, store format, and the determinism
guarantee — snapshot → restore → continue must be bit-identical to an
uninterrupted run on every {kernel} x {datapath} combination, for every
shipped scenario, including checkpoints landing mid-burst, mid-
``ExpressRoute``, and between an intrusive knob write and its
drain-and-apply commit."""

from __future__ import annotations

import json
from collections import OrderedDict, deque
from pathlib import Path

import pytest

from repro.axi.beats import ARBeat, AWBeat, RBeat, WBeat
from repro.axi.types import AtomicOp, BurstType, Resp
from repro.scenario import (
    ScenarioError,
    apply_smoke,
    expand,
    load_file,
    loads,
    run_point,
)
from repro.scenario.runner import _elaborate_point, collect_observables
from repro.sim import Channel, SimulationError, Simulator
from repro.snapshot import (
    SnapshotError,
    capture_simulator,
    decode_state,
    encode_state,
    load_checkpoint,
    restore_simulator,
    save_checkpoint,
)
from repro.system import SystemBuilder

SCENARIO_DIR = Path(__file__).resolve().parent.parent / "scenarios"
GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


# ----------------------------------------------------------------------
# codec
# ----------------------------------------------------------------------
def test_codec_round_trips_nested_state():
    beat = AWBeat(id=3, addr=0x100, beats=16, size=3,
                  burst=BurstType.WRAP, atop=AtomicOp.SWAP, txn=7)
    tree = {
        "ints": [1, -2, 3],
        "tuple_key": {(1, 2): deque([beat, WBeat(data=b"\x01", last=True)])},
        "od": OrderedDict([(5, bytearray(b"abc")), (2, None)]),
        "set": {"budget", "user"},
        "resp": Resp.DECERR,
        "nested": (RBeat(id=1, data=b"xy", last=True),
                   ARBeat(id=0, addr=4, beats=1, size=3)),
        "floats": 1.5,
        "bytes": b"\x00\xff",
    }
    decoded = decode_state(encode_state(tree))
    assert decoded == tree
    # Fresh objects, never aliases: mutating the copy leaves the source.
    decoded["od"][5][0] = 0x7F
    assert tree["od"][5] == bytearray(b"abc")
    restored_beat = decoded["tuple_key"][(1, 2)][0]
    assert restored_beat is not beat and restored_beat == beat


def test_codec_rejects_unregistered_types():
    class Alien:
        pass

    with pytest.raises(SnapshotError, match="no state codec"):
        encode_state({"x": Alien()})
    with pytest.raises(SnapshotError, match="unknown state codec tag"):
        decode_state(["X", "alien", None])


# ----------------------------------------------------------------------
# store
# ----------------------------------------------------------------------
def test_store_round_trip_and_corruption(tmp_path):
    state = encode_state({"cycle": 42, "beats": deque([WBeat(last=True)])})
    path = tmp_path / "x.ckpt"
    save_checkpoint(path, state, meta={"scenario": "t", "cycle": 42})
    meta, loaded = load_checkpoint(path)
    assert meta["cycle"] == 42
    assert decode_state(loaded) == decode_state(state)

    (tmp_path / "bad.ckpt").write_bytes(b"not a checkpoint at all")
    with pytest.raises(SnapshotError, match="not a repro checkpoint"):
        load_checkpoint(tmp_path / "bad.ckpt")
    blob = bytearray(path.read_bytes())
    blob[8:12] = (999).to_bytes(4, "big")
    (tmp_path / "future.ckpt").write_bytes(bytes(blob))
    with pytest.raises(SnapshotError, match="format 999"):
        load_checkpoint(tmp_path / "future.ckpt")


# ----------------------------------------------------------------------
# commit-boundary-only rule
# ----------------------------------------------------------------------
def test_capture_refused_with_uncommitted_beats():
    sim = Simulator()
    channel = Channel(sim, "ch")
    channel.send("beat")
    with pytest.raises(SnapshotError, match="commit boundaries"):
        capture_simulator(sim)
    # The channel-level guard holds on its own too.
    with pytest.raises(SimulationError, match="commit boundaries"):
        channel.state_capture()


def test_capture_refused_with_unowned_hooks():
    sim = Simulator()
    sim.call_at(10, lambda cycle: None)
    with pytest.raises(SnapshotError, match="cannot be captured"):
        capture_simulator(sim)


def test_restore_rejects_mismatched_structure_and_flags():
    def build(batched=True, managers=1):
        builder = SystemBuilder(batched=batched).with_crossbar()
        for i in range(managers):
            builder.add_manager(f"m{i}", driver=True)
        builder.add_sram("sram", base=0, size=0x1000)
        return builder.build()

    state = build().checkpoint()
    with pytest.raises(SnapshotError, match="registration order"):
        build(managers=2).restore(state)
    with pytest.raises(SnapshotError, match="kernel flags"):
        build(batched=False).restore(state)


# ----------------------------------------------------------------------
# scenario grid: split runs equal the golden digests
# ----------------------------------------------------------------------
def _split_run(point, cut, active_set, batched):
    """Run *point* to *cut*, checkpoint, restore into a fresh build of
    the same point, and finish the run there."""
    system, generators = _elaborate_point(
        point, active_set=active_set, batched=batched
    )
    spec = point.spec
    if spec.run.until:
        waiting = [
            generators[name] for name in spec.run.until if name in generators
        ]
        system.sim.run_until(
            lambda: all(c.done for c in waiting) or system.sim.cycle >= cut,
            max_cycles=cut + 1,
        )
    else:
        system.sim.run(min(cut, spec.run.horizon))
    state = capture_simulator(system.sim)
    return run_point(
        point, active_set=active_set, batched=batched, resume_state=state
    )


_GRID = [
    pytest.param(
        path, active_set, batched,
        id=f"{path.stem}-{'active' if active_set else 'naive'}-"
        f"{'batched' if batched else 'perbeat'}",
    )
    for path in sorted(SCENARIO_DIR.glob("*.toml"))
    for active_set in (True, False)
    for batched in (True, False)
]


@pytest.mark.parametrize("scenario_path,active_set,batched", _GRID)
def test_checkpointed_runs_match_goldens(scenario_path, active_set, batched):
    """Every campaign point of every shipped scenario, interrupted at
    mid-run (an arbitrary commit boundary: mid-burst, mid-express, and
    mid-schedule cuts all occur across the grid) and restored into a
    fresh system, reproduces the golden digest byte for byte."""
    golden = json.loads(
        (GOLDEN_DIR / f"{scenario_path.stem}.json").read_text(
            encoding="utf-8"
        )
    )
    spec = apply_smoke(load_file(scenario_path))
    digest = {}
    for point in expand(spec):
        cut = max(1, golden[point.label]["sim_cycles"] // 2)
        result = _split_run(point, cut, active_set, batched)
        digest[point.label] = result.observables
    assert digest == golden


# ----------------------------------------------------------------------
# targeted cuts: mid-ExpressRoute, pending intrusive reconfiguration
# ----------------------------------------------------------------------
def _express_system():
    builder = SystemBuilder().with_crossbar()
    builder.add_manager("dma", driver=True)
    builder.add_manager("core", driver=True)
    builder.add_sram("sram", base=0x0, size=0x10000)
    system = builder.build()
    system.driver("dma").write(0x100, beats=256)
    system.driver("dma").read(0x2000, beats=256)
    system.driver("core").read(0x0, beats=2)
    return system


def _driver_fingerprint(system):
    return {
        name: [
            (op.kind, op.addr, op.resp, op.issue_cycle, op.done_cycle)
            for op in driver.completed
        ]
        for name, driver in system.drivers.items()
    }


def test_checkpoint_mid_express_route():
    reference = _express_system()
    reference.run_until_idle()
    expected = _driver_fingerprint(reference)

    paused = _express_system()
    # Step until the kernel is executing an express order for the
    # crossbar (the burst middle is in flight on the reserved W route).
    for _ in range(10_000):
        paused.sim.step()
        if paused.interconnect._w_express or paused.interconnect._r_express:
            break
    else:
        pytest.fail("no express order ever became live")
    state = capture_simulator(paused.sim)

    resumed = _express_system()
    resumed.restore(state)
    # The restored crossbar re-installed the same orders.
    assert {
        mi for mi in resumed.interconnect._w_express
    } == {mi for mi in paused.interconnect._w_express}
    assert {
        mi for mi in resumed.interconnect._r_express
    } == {mi for mi in paused.interconnect._r_express}
    resumed.run_until_idle()
    assert _driver_fingerprint(resumed) == expected
    # Continuing the paused original must agree too (capture is
    # read-only and left nothing behind).
    paused.run_until_idle()
    assert _driver_fingerprint(paused) == expected


def _realm_system():
    from repro.realm.regions import RegionConfig

    builder = SystemBuilder().with_crossbar()
    builder.add_manager(
        "dma", protect=True, granularity=64,
        regions=[RegionConfig(0x0, 0x10000, 1 << 62, 1 << 62)],
        driver=True,
    )
    builder.add_sram("sram", base=0x0, size=0x10000)
    return builder.build()


def test_checkpoint_with_pending_intrusive_reconfig():
    reference = _realm_system()
    reference.driver("dma").write(0x0, beats=200)
    reference.sim.run(20)
    reference.realm("dma").set_granularity(4)  # drains before applying
    reference.sim.run(1)
    assert reference.realm("dma")._pending_reconfig, (
        "test setup: the write burst must keep the unit busy so the "
        "granularity change stays queued"
    )
    state = capture_simulator(reference.sim)

    resumed = _realm_system()
    resumed.driver("dma").write(0x0, beats=200)  # same script, never run
    resumed.restore(state)
    assert resumed.realm("dma")._pending_reconfig == [("granularity", 4)]

    reference.run_until_idle()
    resumed.run_until_idle()
    assert _driver_fingerprint(resumed) == _driver_fingerprint(reference)
    assert resumed.realm("dma").granularity == 4
    assert (
        resumed.realm("dma").mr.state_capture()
        == reference.realm("dma").mr.state_capture()
    )


def test_checkpoint_between_scheduled_knob_write_and_commit():
    """A [[schedule]] rule writes an intrusive knob at cycle 60; the
    checkpoint lands after the write queued but before the drained unit
    committed it."""
    text = """
[scenario]
name = "pending-knob"
seed = 5

[run]
horizon = 400

[topology]
[[topology.managers]]
name = "dma"
protect = true
granularity = 128
[[topology.managers.regions]]
base = 0x0
size = 0x1_0000
budget_bytes = "unlimited"
period_cycles = "unlimited"

[[topology.managers]]
name = "pad"

[[topology.memories]]
name = "mem"
kind = "sram"
base = 0x0
size = 0x1_0000

[traffic.dma]
kind = "dma"
src_base = 0x0
src_size = 0x4000
dst_base = 0x4000
dst_size = 0x4000
burst_beats = 256

[[schedule]]
label = "regran"
at = 60
[schedule.set]
"realm.dma.granularity" = 8
"""
    point = expand(loads(text, fmt="toml"))[0]
    scratch = run_point(point)

    system, generators = _elaborate_point(point)
    system.sim.run(61)  # the rule fired at the boundary of cycle 60
    realm = system.realms["dma"]
    assert any(
        kind == "granularity" for kind, _ in realm._pending_reconfig
    ), "the intrusive write must still be draining at the cut"
    state = capture_simulator(system.sim)
    restored = run_point(point, resume_state=state)
    assert restored.observables == scratch.observables


def test_rewind_same_system():
    system = _express_system()
    system.sim.run(100)
    state = capture_simulator(system.sim)
    system.run_until_idle()
    final = _driver_fingerprint(system)
    system.restore(state)  # rewind in place
    assert system.sim.cycle == 100
    system.run_until_idle()
    assert _driver_fingerprint(system) == final


def test_checkpoint_file_round_trip_via_simulator_api(tmp_path):
    system = _express_system()
    system.sim.run(50)
    path = tmp_path / "sys.ckpt"
    tree = system.checkpoint(path)
    fresh = _express_system()
    fresh.restore(path)
    assert fresh.sim.cycle == 50
    assert capture_simulator(fresh.sim) == tree


def test_run_point_checkpoint_every_writes_resumable_files(tmp_path):
    spec = apply_smoke(load_file(SCENARIO_DIR / "fig6a.toml"))
    point = expand(spec)[0]
    scratch = run_point(point)
    run_point(
        point,
        checkpoint_every=100,
        checkpoint_dir=str(tmp_path),
        scenario_name="fig6a",
    )
    files = sorted(tmp_path.glob("*.ckpt"))
    assert files, "periodic checkpointing wrote no files"
    meta, state = load_checkpoint(files[-1])
    assert meta["scenario"] == "fig6a"
    from repro.scenario.spec import validate
    from repro.scenario.sweep import ExpandedPoint

    rebuilt = ExpandedPoint(
        index=meta["index"], label=meta["label"], seed=meta["seed"],
        spec=validate(meta["spec"]),
    )
    resumed = run_point(rebuilt, resume_state=state)
    assert resumed.observables == scratch.observables
    assert resumed.sim_cycles == scratch.sim_cycles


def test_resume_flag_mismatch_is_a_scenario_error(tmp_path):
    spec = apply_smoke(load_file(SCENARIO_DIR / "fig6a.toml"))
    point = expand(spec)[0]
    system, _ = _elaborate_point(point)
    system.sim.run(10)
    state = capture_simulator(system.sim)
    with pytest.raises(ScenarioError, match="kernel flags"):
        run_point(point, batched=False, resume_state=state)


# ----------------------------------------------------------------------
# span-replay cuts: mid-span checkpoints, knob writes at span start + 1
# ----------------------------------------------------------------------
_SPAN_STREAM_TOML = """
[scenario]
name = "span-cut"
seed = 3
active_set = true

[run]
horizon = 1200

[topology]
[[topology.managers]]
name = "dma"
protect = true
granularity = 256
[topology.managers.realm]
write_buffer_present = false
[[topology.managers.regions]]
base = 0x0
size = 0x1_0000
budget_bytes = "unlimited"
period_cycles = "unlimited"

[[topology.managers]]
name = "pad"

[[topology.memories]]
name = "mem"
kind = "sram"
base = 0x0
size = 0x1_0000

[traffic.dma]
kind = "dma"
src_base = 0x0
src_size = 0x4000
dst_base = 0x4000
dst_size = 0x4000
burst_beats = 256
"""

_SPAN_KNOB_TOML = _SPAN_STREAM_TOML + """
[[schedule]]
label = "regran"
at = {at}
[schedule.set]
"realm.dma.granularity" = 64
"""


def _recorded_spans(point, monkeypatch) -> list[tuple[int, int]]:
    """Run *point* on the span-replay kernel and record every committed
    span as a (start_cycle, end_cycle) interval."""
    import repro.sim.kernel as kernel_mod
    from repro.scenario.runner import _execute_run
    from repro.sim.span import attempt_span as real_attempt

    spans: list[tuple[int, int]] = []

    def recording(sim, limit):
        start = sim.cycle
        committed = real_attempt(sim, limit)
        if committed:
            spans.append((start, sim.cycle))
        return committed

    monkeypatch.setattr(kernel_mod, "attempt_span", recording)
    system, generators = _elaborate_point(point, active_set=True, batched=True)
    _execute_run(system, point.spec, point.label, generators)
    monkeypatch.undo()
    assert system.sim.spans_entered == len(spans)
    return spans


def _long_span(spans) -> tuple[int, int]:
    for start, end in spans:
        if start >= 50 and end - start >= 8:
            return start, end
    raise AssertionError(f"no long steady span recorded: {spans[:10]}")


def test_checkpoint_mid_span_is_byte_identical(monkeypatch):
    """A checkpoint cut landing strictly inside what would otherwise be
    one long span splits the span at the cut; restore-and-continue must
    reproduce the uninterrupted observables on all four kernel combos."""
    point = expand(loads(_SPAN_STREAM_TOML, fmt="toml"))[0]
    scratch = run_point(point)  # active + batched, span replay on
    start, end = _long_span(_recorded_spans(point, monkeypatch))
    cut = start + 3
    assert cut < end
    for active_set in (True, False):
        for batched in (True, False):
            system, _ = _elaborate_point(
                point, active_set=active_set, batched=batched
            )
            system.sim.run(cut)
            assert system.sim.cycle == cut
            state = capture_simulator(system.sim)
            resumed = run_point(
                point, active_set=active_set, batched=batched,
                resume_state=state,
            )
            assert resumed.observables == scratch.observables, (
                f"active_set={active_set} batched={batched} diverged "
                f"after a cut at cycle {cut} (span was {start}..{end})"
            )


def test_knob_write_one_cycle_after_span_start_aborts_span(monkeypatch):
    """A scheduled intrusive knob write due one cycle after a span start
    clamps the negotiation window below MIN_SPAN, so the span aborts and
    the write executes on the per-beat path at exactly its cycle —
    byte-identical to the naive kernel, including a checkpoint taken
    while the drain-and-apply is still pending."""
    from repro.sim.span import MIN_SPAN

    steady = expand(loads(_SPAN_STREAM_TOML, fmt="toml"))[0]
    start, _end = _long_span(_recorded_spans(steady, monkeypatch))
    at = start + 1
    assert MIN_SPAN > 2  # the hook at span start + 1 must clamp below it

    point = expand(loads(_SPAN_KNOB_TOML.format(at=at), fmt="toml"))[0]
    scratch = run_point(point)
    naive = run_point(point, active_set=False, batched=False)
    assert scratch.observables == naive.observables

    # The instrumented run: the hook's window clamp aborted span
    # attempts around the knob cycle, streaming re-entered spans after
    # the drained unit applied the new granularity.
    spans = _recorded_spans(point, monkeypatch)
    system, generators = _elaborate_point(point, active_set=True, batched=True)
    from repro.scenario.runner import _execute_run
    _execute_run(system, point.spec, point.label, generators)
    assert all(end <= at + 1 or begin > at for begin, end in spans), (
        "no span may jump past the scheduled knob write's boundary"
    )
    assert system.sim.span_aborts.get("window", 0) > 0
    assert system.sim.spans_entered > 0
    assert system.realms["dma"].granularity == 64

    # Checkpoint one cycle after the rule fired: the intrusive write is
    # queued (or draining) at the cut, and restore-and-continue matches.
    paused, _ = _elaborate_point(point, active_set=True, batched=True)
    paused.sim.run(at + 1)
    state = capture_simulator(paused.sim)
    resumed = run_point(point, resume_state=state)
    assert resumed.observables == scratch.observables
