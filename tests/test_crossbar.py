"""Integration tests for the crossbar (managers x subordinates, DECERR,
round-robin fairness, W-channel reservation DoS)."""

import pytest

from repro.axi import AxiBundle, AWBeat, Resp, WBeat
from repro.interconnect import AddressMap, AxiCrossbar
from repro.mem import SramMemory
from repro.sim import Component, Simulator
from repro.traffic.driver import ManagerDriver

from helpers import build_simple_system, run_all


def build_two_sub_system(sim, n_managers=2):
    mgr_ports = [AxiBundle(sim, f"m{i}") for i in range(n_managers)]
    sub_ports = [AxiBundle(sim, f"s{i}") for i in range(2)]
    amap = AddressMap()
    amap.add_range(0x0000, 0x1000, port=0, name="mem0")
    amap.add_range(0x1000, 0x1000, port=1, name="mem1")
    xbar = sim.add(AxiCrossbar(mgr_ports, sub_ports, amap))
    mems = [
        sim.add(SramMemory(sub_ports[0], base=0x0000, size=0x1000, name="mem0")),
        sim.add(SramMemory(sub_ports[1], base=0x1000, size=0x1000, name="mem1")),
    ]
    drivers = [sim.add(ManagerDriver(p, name=f"drv{i}"))
               for i, p in enumerate(mgr_ports)]
    return drivers, xbar, mems


def test_single_manager_read_write_through_xbar(sim):
    drivers, xbar, sram = build_simple_system(sim, n_managers=1)
    drv = drivers[0]
    drv.write(0x10, bytes(range(8)))
    op = drv.read(0x10)
    run_all(sim, drivers)
    assert op.resp == Resp.OKAY
    assert op.rdata == bytes(range(8))


def test_two_managers_to_two_subordinates_parallel(sim):
    drivers, xbar, mems = build_two_sub_system(sim)
    a = drivers[0].read(0x0, beats=16)
    b = drivers[1].read(0x1000, beats=16)
    run_all(sim, drivers)
    # Different subordinates: latencies should be equal (no interference).
    assert abs(a.latency - b.latency) <= 1


def test_two_managers_same_subordinate_serialized(sim):
    drivers, xbar, mems = build_two_sub_system(sim)
    a = drivers[0].read(0x0, beats=64)
    b = drivers[1].read(0x0, beats=64)
    run_all(sim, drivers)
    # Same subordinate: one of them waits for the other's burst.
    slower = max(a.latency, b.latency)
    faster = min(a.latency, b.latency)
    assert slower >= faster + 60


def test_decode_miss_read_returns_decerr(sim):
    drivers, xbar, sram = build_simple_system(sim, n_managers=1)
    op = drivers[0].read(0x8000, beats=4)
    run_all(sim, drivers)
    assert op.resp == Resp.DECERR
    assert xbar.decode_errors == 1


def test_decode_miss_write_returns_decerr(sim):
    drivers, xbar, sram = build_simple_system(sim, n_managers=1)
    op = drivers[0].write(0x8000, bytes(8))
    run_all(sim, drivers)
    assert op.resp == Resp.DECERR


def test_decerr_read_has_correct_beat_count(sim):
    drivers, xbar, sram = build_simple_system(sim, n_managers=1)
    op = drivers[0].read(0x8000, beats=7)
    run_all(sim, drivers)
    # The driver only completes when it sees r.last on beat 7.
    assert op.done


def test_responses_routed_to_correct_manager(sim):
    drivers, xbar, sram = build_simple_system(sim, n_managers=3)
    pattern = {}
    for i, drv in enumerate(drivers):
        payload = bytes([i + 1] * 8)
        drv.write(0x100 + i * 8, payload)
        pattern[i] = payload
    run_all(sim, drivers)
    ops = []
    for i, drv in enumerate(drivers):
        op = drv.read(0x100 + i * 8)
        ops.append(op)
    run_all(sim, drivers)
    for i, op in enumerate(ops):
        assert op.rdata == pattern[i], f"manager {i} got wrong data"


def test_id_prefix_roundtrip_preserves_manager_id(sim):
    drivers, xbar, sram = build_simple_system(sim, n_managers=2)
    op = drivers[1].read(0x0, id=5)
    run_all(sim, drivers)
    assert op.done  # response matched by driver on its own port


def test_round_robin_fairness_many_bursts(sim):
    """Two managers issuing equal bursts to one subordinate get ~equal
    completion counts over time (burst-granular round-robin)."""
    drivers, xbar, sram = build_simple_system(sim, n_managers=2)
    for _ in range(10):
        drivers[0].read(0x0, beats=8)
        drivers[1].read(0x0, beats=8)
    run_all(sim, drivers)
    done0 = [op.done_cycle for op in drivers[0].completed]
    done1 = [op.done_cycle for op in drivers[1].completed]
    # Interleaved completion: neither manager finishes all before the other.
    assert done0[-1] > done1[0] and done1[-1] > done0[0]


def test_long_burst_delays_short_access(sim):
    """Burst-granular arbitration: a 256-beat burst ahead of a single-beat
    access delays it by roughly the burst length (the paper's worst case)."""
    drivers, xbar, sram = build_simple_system(sim, n_managers=2, sram_size=0x4000)
    solo = drivers[0].read(0x0)
    run_all(sim, drivers)
    base = solo.latency

    burst = drivers[1].read(0x0, beats=256)
    victim = drivers[0].read(0x8)
    run_all(sim, drivers)
    # The victim access waits for most of the 256-beat burst.
    assert victim.latency > base + 200


class _StallingWriter(Component):
    """Sends AW, then *never* sends W data: the W-channel DoS attacker."""

    def __init__(self, port):
        super().__init__("staller")
        self.port = port
        self._sent = False

    def tick(self, cycle):
        if not self._sent and self.port.aw.can_send():
            self.port.aw.send(AWBeat(id=0, addr=0x0, beats=16, size=3))
            self._sent = True


def test_w_channel_reservation_dos(sim):
    """Without REALM, a manager that wins AW arbitration and withholds its
    write data blocks every other manager's writes to that subordinate."""
    mgr_ports = [AxiBundle(sim, "attacker"), AxiBundle(sim, "victim")]
    sub_port = AxiBundle(sim, "s0")
    amap = AddressMap()
    amap.add_range(0x0, 0x1000, port=0)
    sim.add(AxiCrossbar(mgr_ports, [sub_port], amap))
    sim.add(SramMemory(sub_port, base=0, size=0x1000))
    sim.add(_StallingWriter(mgr_ports[0]))
    victim = sim.add(ManagerDriver(mgr_ports[1], name="victim"))
    op = victim.write(0x100, bytes(8))
    sim.run(2000)
    assert not op.done, "victim write completed despite W-channel DoS"


def test_crossbar_validates_ports():
    sim = Simulator()
    with pytest.raises(ValueError):
        AxiCrossbar([], [AxiBundle(sim, "s")], AddressMap())


def test_crossbar_counters(sim):
    drivers, xbar, sram = build_simple_system(sim, n_managers=1)
    drivers[0].read(0x0)
    drivers[0].write(0x0, bytes(8))
    run_all(sim, drivers)
    assert xbar.ar_forwarded == 1
    assert xbar.aw_forwarded == 1
