"""Unit + property tests for transaction-ID composition."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.axi import IdMap, TxnCounter


def test_compose_and_split_roundtrip():
    idmap = IdMap(inner_id_bits=4)
    wide = idmap.compose(3, 0xA)
    assert wide == (3 << 4) | 0xA
    assert idmap.split(wide) == (3, 0xA)
    assert idmap.manager_of(wide) == 3
    assert idmap.inner_of(wide) == 0xA


def test_compose_rejects_overflow_inner_id():
    idmap = IdMap(inner_id_bits=2)
    with pytest.raises(ValueError):
        idmap.compose(0, 4)
    with pytest.raises(ValueError):
        idmap.compose(0, -1)


def test_compose_rejects_negative_manager():
    idmap = IdMap(inner_id_bits=2)
    with pytest.raises(ValueError):
        idmap.compose(-1, 0)


def test_split_rejects_negative():
    with pytest.raises(ValueError):
        IdMap(inner_id_bits=2).split(-5)


@settings(max_examples=100, deadline=None)
@given(
    bits=st.integers(min_value=1, max_value=16),
    mgr=st.integers(min_value=0, max_value=63),
    data=st.data(),
)
def test_property_roundtrip(bits, mgr, data):
    inner = data.draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
    idmap = IdMap(inner_id_bits=bits)
    assert idmap.split(idmap.compose(mgr, inner)) == (mgr, inner)


def test_txn_counter_monotonic():
    tc = TxnCounter()
    tags = [tc.allocate() for _ in range(5)]
    assert tags == [0, 1, 2, 3, 4]
    assert tc.issued == 5
