"""Tests for the mesh NoC and REALM-at-NoC-ingress (Figure 1b)."""

import pytest

from repro.axi import AxiBundle, Resp
from repro.interconnect import AddressMap
from repro.interconnect.noc import AxiNoc
from repro.mem import SramMemory
from repro.realm import RealmUnit, RealmUnitParams, RegionConfig
from repro.sim import Simulator
from repro.traffic import ManagerDriver


def build_noc(sim, width=3, height=3, n_managers=2):
    """Managers on the left column, two SRAMs on the right column."""
    mgr_nodes = [(0, i) for i in range(n_managers)]
    sub_nodes = [(width - 1, 0), (width - 1, 1)]
    managers = {node: AxiBundle(sim, f"m{node}") for node in mgr_nodes}
    subs = {node: AxiBundle(sim, f"s{node}") for node in sub_nodes}
    amap = AddressMap()
    amap.add_range(0x0000, 0x1000, port=0, name="mem0")
    amap.add_range(0x1000, 0x1000, port=1, name="mem1")
    noc = sim.add(AxiNoc(width, height, managers, subs, amap))
    mems = [
        sim.add(SramMemory(subs[sub_nodes[0]], base=0x0, size=0x1000, name="mem0")),
        sim.add(SramMemory(subs[sub_nodes[1]], base=0x1000, size=0x1000, name="mem1")),
    ]
    drivers = [sim.add(ManagerDriver(managers[n], name=f"drv{n}"))
               for n in mgr_nodes]
    return noc, drivers, mems, managers


def finish(sim, drivers, max_cycles=50_000):
    sim.run_until(lambda: all(d.idle for d in drivers),
                  max_cycles=max_cycles, what="drivers")


def test_read_write_roundtrip_across_mesh(sim):
    noc, drivers, mems, _ = build_noc(sim)
    payload = bytes(range(8))
    drivers[0].write(0x100, payload)
    op = drivers[0].read(0x100)
    finish(sim, drivers)
    assert op.resp == Resp.OKAY
    assert op.rdata == payload


def test_burst_integrity_across_mesh(sim):
    noc, drivers, mems, _ = build_noc(sim)
    payload = bytes(i & 0xFF for i in range(16 * 8))
    drivers[0].write(0x200, payload, beats=16)
    op = drivers[0].read(0x200, beats=16)
    finish(sim, drivers)
    assert op.rdata == payload


def test_two_managers_two_subordinates(sim):
    noc, drivers, mems, _ = build_noc(sim)
    a = drivers[0].write(0x100, bytes([1] * 8))
    b = drivers[1].write(0x1100, bytes([2] * 8))
    finish(sim, drivers)
    ra = drivers[0].read(0x100)
    rb = drivers[1].read(0x1100)
    finish(sim, drivers)
    assert ra.rdata == bytes([1] * 8)
    assert rb.rdata == bytes([2] * 8)


def test_responses_routed_to_correct_manager(sim):
    noc, drivers, mems, _ = build_noc(sim)
    for i, drv in enumerate(drivers):
        drv.write(0x300 + i * 8, bytes([i + 1] * 8))
    finish(sim, drivers)
    ops = [drv.read(0x300 + i * 8) for i, drv in enumerate(drivers)]
    finish(sim, drivers)
    for i, op in enumerate(ops):
        assert op.rdata == bytes([i + 1] * 8)


def test_decode_miss_gets_decerr(sim):
    noc, drivers, mems, _ = build_noc(sim)
    op_r = drivers[0].read(0x8000)
    finish(sim, drivers)
    assert op_r.resp == Resp.DECERR
    op_w = drivers[0].write(0x8000, bytes(8))
    finish(sim, drivers)
    assert op_w.resp == Resp.DECERR


def test_latency_scales_with_hop_count(sim):
    """A farther subordinate costs more cycles (per-hop routing)."""
    noc, drivers, mems, _ = build_noc(sim, width=5)
    near = drivers[0].read(0x0)  # routes to (4,0) ... both far; compare nets
    finish(sim, drivers)
    # Build a second, smaller mesh and compare.
    sim2 = Simulator()
    noc2, drivers2, mems2, _ = build_noc(sim2, width=2)
    near2 = drivers2[0].read(0x0)
    finish(sim2, drivers2)
    assert near.latency > near2.latency


def test_interleaved_w_data_reordered_at_subordinate(sim):
    """Two managers writing the same subordinate concurrently must both
    complete with intact data (the NI serialises in AW order)."""
    noc, drivers, mems, _ = build_noc(sim)
    a = drivers[0].write(0x400, bytes([0xAA] * 32), beats=4)
    b = drivers[1].write(0x500, bytes([0xBB] * 32), beats=4)
    finish(sim, drivers)
    ra = drivers[0].read(0x400, beats=4)
    rb = drivers[1].read(0x500, beats=4)
    finish(sim, drivers)
    assert ra.rdata == bytes([0xAA] * 32)
    assert rb.rdata == bytes([0xBB] * 32)


def test_noc_validates_nodes():
    sim = Simulator()
    m = {(0, 0): AxiBundle(sim, "m")}
    s = {(9, 9): AxiBundle(sim, "s")}
    with pytest.raises(ValueError):
        AxiNoc(2, 2, m, s, AddressMap())
    with pytest.raises(ValueError):
        AxiNoc(2, 2, {}, {(0, 0): AxiBundle(sim, "x")}, AddressMap())
    with pytest.raises(ValueError):
        AxiNoc(2, 2, {(0, 0): AxiBundle(sim, "a")},
               {(0, 0): AxiBundle(sim, "b")}, AddressMap())


def test_realm_unit_at_noc_ingress(sim):
    """Figure 1b: a REALM unit regulates a manager entering the NoC."""
    width, height = 3, 2
    mgr_up = AxiBundle(sim, "mgr")
    mgr_down = AxiBundle(sim, "mgr.noc")
    realm = sim.add(RealmUnit(mgr_up, mgr_down, RealmUnitParams()))
    sub = AxiBundle(sim, "sub")
    amap = AddressMap()
    amap.add_range(0x0, 0x1000, port=0)
    noc = sim.add(
        AxiNoc(width, height, {(0, 0): mgr_down}, {(2, 0): sub}, amap)
    )
    sim.add(SramMemory(sub, base=0, size=0x1000))
    drv = sim.add(ManagerDriver(mgr_up))

    realm.set_granularity(2)
    realm.configure_region(
        0, RegionConfig(base=0, size=0x1000, budget_bytes=64,
                        period_cycles=600)
    )
    payload = bytes(range(64))
    drv.write(0x0, payload, beats=8)  # 64 B: exactly one period's budget
    blocked = drv.read(0x0, beats=8)  # next 64 B must wait for replenish
    sim.run_until(lambda: drv.idle, max_cycles=20_000, what="driver")
    assert blocked.rdata == payload
    assert blocked.done_cycle >= 600
    assert realm.splitter.bursts_split == 2


def test_noc_flit_counter(sim):
    noc, drivers, mems, _ = build_noc(sim)
    drivers[0].read(0x0)
    finish(sim, drivers)
    assert noc.flits_injected >= 1
