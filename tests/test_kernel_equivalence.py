"""Naive-kernel vs. active-set-kernel equivalence.

The active-set scheduler is a pure optimisation: every observable —
completion cycles, latencies, channel statistics, REALM bookkeeping down
to per-cycle stall counters — must be bit-identical to the naive
tick-everything kernel.  These tests run the same scenario on both
kernels and diff the observables.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.realm import RegionConfig
from repro.scenario import load_file, run_campaign, run_point, expand, validate
from repro.sim import Simulator
from repro.system import SystemBuilder
from repro.traffic import BandwidthHog, CoreModel, DmaEngine, susan_like_trace

SCENARIO_DIR = Path(__file__).resolve().parent.parent / "scenarios"


def _regulated_contention(active_set: bool):
    """Core + budget-throttled DMA behind REALM units on a crossbar."""
    system = (
        SystemBuilder(active_set=active_set)
        .with_crossbar()
        .add_manager("core")
        .add_manager(
            "dma",
            granularity=1,
            regions=[RegionConfig(base=0, size=0x40000,
                                  budget_bytes=512, period_cycles=400)],
        )
        .add_sram("mem", base=0, size=0x40000, capacity=4)
        .build()
    )
    trace = susan_like_trace(n_accesses=40, base=0, footprint=8192,
                             beats=2, gap_mean=25)
    core = system.attach("core", lambda port: CoreModel(port, trace))
    system.attach(
        "dma",
        lambda port: DmaEngine(port, src_base=0x2000, src_size=0x8000,
                               dst_base=0x10000, dst_size=0x8000,
                               burst_beats=64),
    )
    system.sim.run_until(lambda: core.done, max_cycles=500_000, what="core")
    realm = system.realm("dma")
    snap = realm.region_snapshot(0)
    mem_port_channels = system.ports["core"].channels
    return (
        system.sim.cycle,
        core.execution_cycles,
        tuple(core.latencies),
        snap.total_bytes,
        snap.stall_cycles,
        snap.txn_count,
        snap.cycles_into_period,
        realm.mr.denied_by_budget,
        realm.isolation.blocked_aw + realm.isolation.blocked_ar,
        realm.isolated,
        tuple((ch.sent_total, ch.recv_total, ch.busy_cycles)
              for ch in mem_port_channels),
    )


def test_regulated_contention_is_cycle_identical():
    naive = _regulated_contention(active_set=False)
    active = _regulated_contention(active_set=True)
    assert naive == active


def _hog_with_snapshot_polling(active_set: bool):
    """Mid-run snapshot reads must see lazily-synced clocks/counters."""
    system = (
        SystemBuilder(active_set=active_set)
        .add_manager(
            "hog",
            granularity=1,
            regions=[RegionConfig(base=0, size=0x10000,
                                  budget_bytes=256, period_cycles=500)],
        )
        .add_sram("mem", base=0, size=0x10000)
        .build()
    )
    system.attach(
        "hog",
        lambda port: BandwidthHog(port, target_base=0, window=0x8000, beats=16),
    )
    realm = system.realm("hog")
    samples = []
    for _ in range(8):
        system.sim.run(333)  # deliberately not period-aligned
        snap = realm.region_snapshot(0)
        samples.append(
            (snap.total_bytes, snap.stall_cycles, snap.cycles_into_period,
             snap.bytes_this_period, realm.budget_exhausted, realm.isolated)
        )
    return samples


def test_mid_run_snapshots_are_cycle_identical():
    naive = _hog_with_snapshot_polling(active_set=False)
    active = _hog_with_snapshot_polling(active_set=True)
    assert naive == active


def _throttled_hog(active_set: bool, period: int):
    """Throttle-enabled regulation: the frozen-stall sleep must wake at
    every replenish edge (the throttle cap follows the budget fraction,
    which resets at the edge even when the region never depletes)."""
    system = (
        SystemBuilder(active_set=active_set)
        .add_manager(
            "hog", granularity=64, capacity=8, throttle=True,
            regions=[RegionConfig(base=0, size=0x10000,
                                  budget_bytes=2048, period_cycles=period)],
        )
        .add_sram("mem", base=0, size=0x10000, read_latency=60)
        .build()
    )
    system.attach(
        "hog",
        lambda port: BandwidthHog(port, target_base=0, window=0x8000,
                                  beats=64, max_outstanding=8),
    )
    system.sim.run(20_000)
    realm = system.realm("hog")
    snap = realm.region_snapshot(0)
    return (
        realm.mr.denied_by_throttle,
        realm.mr.denied_by_budget,
        snap.stall_cycles,
        snap.total_bytes,
        snap.cycles_into_period,
    )


@pytest.mark.parametrize("period", [105, 1000])
def test_throttled_regulation_is_cycle_identical(period):
    assert _throttled_hog(False, period) == _throttled_hog(True, period)


def _reset_determinism(active_set: bool):
    system = (
        SystemBuilder(active_set=active_set)
        .add_manager("mgr", protect=True, driver=True)
        .add_sram("mem", base=0, size=0x1000)
        .build()
    )
    drv = system.driver("mgr")

    def workload():
        drv.write(0x0, bytes(range(64)), beats=8)
        op = drv.read(0x0, beats=8)
        system.run_until_idle()
        return (system.sim.cycle, op.done_cycle, op.latency)

    first = workload()
    system.sim.reset()
    second = workload()
    return first, second


@pytest.mark.parametrize("active_set", [False, True])
def test_reset_restores_deterministic_replay(active_set):
    first, second = _reset_determinism(active_set)
    assert first == second


def test_reset_replay_matches_across_kernels():
    assert _reset_determinism(False) == _reset_determinism(True)


# ----------------------------------------------------------------------
# scenario-axis sweeps: the declarative campaign layer lets the
# equivalence suite cover far more of the configuration space than the
# original hand-coded period sweep — interconnect flavor x memory
# backend x (malicious) traffic mix, each diffed kernel-vs-kernel.
# ----------------------------------------------------------------------
def _axis_scenario(interconnect: str, memory: str, aggressor: str) -> dict:
    """One point of the equivalence grid in canonical scenario form."""
    managers = [
        {
            "name": "core",
            "granularity": 8,
            "regions": [{"base": 0x8000_0000, "size": 0x4_0000,
                         "budget_bytes": "unlimited",
                         "period_cycles": "unlimited"}],
        },
        {
            "name": "bad",
            "granularity": 1,
            "regions": [{"base": 0x8000_0000, "size": 0x4_0000,
                         "budget_bytes": 1024, "period_cycles": 400}],
        },
    ]
    memories = [{
        "name": "dram",
        "kind": memory,
        "base": 0x8000_0000,
        "size": 0x4_0000,
    }]
    if memory == "cached_dram":
        memories[0].update(llc_capacity=0x8000, llc_ways=4, front_capacity=4)
    topology: dict = {"interconnect": interconnect,
                      "managers": managers, "memories": memories}
    if interconnect == "noc":
        topology["noc"] = {"width": 3, "height": 2}
    aggressors = {
        "hog": {"kind": "hog", "target_base": 0x8000_0000,
                "window": 0x8000, "beats": 64},
        "trickler": {"kind": "trickler", "target": 0x8000_0000,
                     "beats": 8, "gap": 32},
        "dma": {"kind": "dma", "src_base": 0x8000_4000, "src_size": 0x4000,
                "dst_base": 0x8000_8000, "dst_size": 0x4000,
                "burst_beats": 64},
    }
    warm = []
    if memory == "cached_dram":
        warm = [{"cache": "llc", "base": 0x8000_0000, "size": 8192}]
    return {
        "scenario": {"name": "equiv-axis", "seed": 3},
        "run": {"horizon": 6_000},
        "topology": topology,
        "traffic": {
            "core": {"kind": "core", "pattern": "susan", "n_accesses": 200,
                     "base": 0x8000_0000, "footprint": 8192, "gap_mean": 3,
                     "beats": 2},
            "bad": aggressors[aggressor],
        },
        "warm": warm,
    }


AXIS_GRID = [
    ("crossbar", "cached_dram", "hog"),
    ("crossbar", "dram", "trickler"),
    ("noc", "cached_dram", "dma"),
    ("noc", "sram", "hog"),
    ("crossbar", "sram", "dma"),
]


# The full datapath grid: (active_set, batched).  ``(False, False)`` is
# the naive per-beat reference every other combination must match.
KERNEL_GRID = [(False, False), (False, True), (True, False), (True, True)]


@pytest.mark.parametrize("interconnect,memory,aggressor", AXIS_GRID)
def test_scenario_axes_are_cycle_identical(interconnect, memory, aggressor):
    spec = validate(_axis_scenario(interconnect, memory, aggressor))
    point = expand(spec)[0]
    reference = run_point(point, active_set=False, batched=False)
    for active_set, batched in KERNEL_GRID[1:]:
        result = run_point(point, active_set=active_set, batched=batched)
        combo = (active_set, batched)
        assert result.observables == reference.observables, combo
        assert result.latencies == reference.latencies, combo


@pytest.mark.parametrize(
    "name", [path.stem for path in sorted(SCENARIO_DIR.glob("*.toml"))]
)
def test_shipped_campaigns_are_cycle_identical(name):
    """Whole shipped campaigns (smoke scale) diffed kernel-vs-kernel and
    batched-vs-per-beat — independent of the checked-in goldens, so a
    stale golden can never mask an equivalence break."""
    spec = load_file(SCENARIO_DIR / f"{name}.toml")
    naive = run_campaign(spec, smoke=True, active_set=False)
    active = run_campaign(spec, smoke=True, active_set=True)
    per_beat = run_campaign(spec, smoke=True, active_set=True, batched=False)
    assert naive.digest() == active.digest()
    assert per_beat.digest() == active.digest()


# ----------------------------------------------------------------------
# batched-datapath burst edge cases: 1-beat and maximum-length bursts,
# bursts colliding with an arbitration hand-off mid-flight (a fragmenting
# REALM unit interleaves with a full-length burst at the AW arbiter), and
# a scheduled knob write landing mid-burst — each diffed over the whole
# (active_set, batched) grid.
# ----------------------------------------------------------------------
def _burst_collision(active_set, batched, beats_a, beats_b):
    system = (
        SystemBuilder(active_set=active_set, batched=batched)
        .with_crossbar()
        .add_manager("a")
        .add_manager(
            "b",
            granularity=min(beats_b, 16),
            regions=[RegionConfig(base=0, size=0x40000,
                                  budget_bytes=8192, period_cycles=600)],
        )
        .add_sram("mem", base=0, size=0x40000, capacity=4, read_latency=4)
        .build()
    )
    a = system.attach(
        "a",
        lambda port: DmaEngine(port, src_base=0x0, src_size=0x8000,
                               dst_base=0x10000, dst_size=0x8000,
                               burst_beats=beats_a),
    )
    b = system.attach(
        "b",
        lambda port: DmaEngine(port, src_base=0x8000, src_size=0x8000,
                               dst_base=0x18000, dst_size=0x8000,
                               burst_beats=beats_b),
    )
    system.sim.run(5_000)
    mem = system.memory("mem")
    return (
        system.sim.cycle,
        a.bytes_read, a.bytes_written, a.read_bursts, a.write_bursts,
        b.bytes_read, b.bytes_written, b.read_bursts, b.write_bursts,
        mem.reads_served, mem.writes_served,
        mem.read_beats, mem.write_beats,
        tuple(
            (ch.sent_total, ch.recv_total, ch.busy_cycles)
            for port in system.ports.values()
            for ch in port.channels
        ),
    )


@pytest.mark.parametrize(
    "beats_a,beats_b", [(1, 1), (256, 256), (256, 1), (64, 16)]
)
def test_burst_edges_are_cycle_identical(beats_a, beats_b):
    reference = _burst_collision(False, False, beats_a, beats_b)
    for active_set, batched in KERNEL_GRID[1:]:
        result = _burst_collision(active_set, batched, beats_a, beats_b)
        assert result == reference, (active_set, batched)


def _knob_mid_burst_scenario() -> dict:
    return {
        "scenario": {"name": "knob-mid-burst", "seed": 11},
        "run": {"horizon": 4_000},
        "topology": {
            "interconnect": "crossbar",
            "managers": [
                {"name": "core", "granularity": 8,
                 "regions": [{"base": 0, "size": 0x4_0000,
                              "budget_bytes": "unlimited",
                              "period_cycles": "unlimited"}]},
                {"name": "dma", "granularity": 256,
                 "regions": [{"base": 0, "size": 0x4_0000,
                              "budget_bytes": 65536,
                              "period_cycles": 1000}]},
            ],
            "memories": [{"name": "mem", "kind": "sram", "base": 0,
                          "size": 0x4_0000, "capacity": 4}],
        },
        "traffic": {
            "core": {"kind": "core", "pattern": "susan", "n_accesses": 60,
                     "base": 0, "footprint": 4096, "gap_mean": 6,
                     "beats": 2},
            "dma": {"kind": "dma", "src_base": 0x8000, "src_size": 0x8000,
                    "dst_base": 0x1_0000, "dst_size": 0x8000,
                    "burst_beats": 256},
        },
        "schedule": [
            # Cycle 777 lands inside a 256-beat burst middle: the budget
            # squeeze must bite at the same commit boundary on every
            # datapath, express routes notwithstanding.
            {"label": "squeeze", "at": 777,
             "set": {"realm.dma.region0.budget_bytes": 512}},
            # And a periodic sampler reads the probe counters mid-burst.
            {"label": "sample", "every": 333,
             "sample": ["realm.dma.region0.*", "port.dma.w.*"]},
        ],
    }


def test_knob_write_mid_burst_is_cycle_identical():
    spec = validate(_knob_mid_burst_scenario())
    point = expand(spec)[0]
    reference = run_point(point, active_set=False, batched=False)
    for active_set, batched in KERNEL_GRID[1:]:
        result = run_point(point, active_set=active_set, batched=batched)
        combo = (active_set, batched)
        assert result.observables == reference.observables, combo
        assert result.latencies == reference.latencies, combo
