"""Integration tests for the Cheshire-like SoC model."""

import pytest

from repro.realm import RegionConfig, UNLIMITED
from repro.sim import Simulator
from repro.soc import DRAM_BASE, SPM_BASE, CheshireConfig, CheshireSoC
from repro.traffic import CoreModel, DmaEngine, susan_like_trace
from repro.traffic.driver import ManagerDriver


def test_soc_builds_with_three_realm_units():
    sim = Simulator()
    soc = CheshireSoC(sim)
    assert set(soc.realm_units) == {"core", "dma", "idma"}
    assert soc.regfile is not None
    assert soc.unit_index("core") == 0


def test_core_reaches_dram_through_llc():
    sim = Simulator()
    soc = CheshireSoC(sim)
    soc.dram.store.write(DRAM_BASE + 0x100, bytes(range(8)))
    drv = sim.add(ManagerDriver(soc.core_port))
    op = drv.read(DRAM_BASE + 0x100)
    sim.run_until(lambda: drv.idle, max_cycles=5000, what="driver")
    assert op.rdata == bytes(range(8))
    assert soc.llc.misses == 1


def test_core_reaches_spm():
    sim = Simulator()
    soc = CheshireSoC(sim)
    drv = sim.add(ManagerDriver(soc.core_port))
    drv.write(SPM_BASE + 0x40, bytes([0x5A] * 8))
    op = drv.read(SPM_BASE + 0x40)
    sim.run_until(lambda: drv.idle, max_cycles=5000, what="driver")
    assert op.rdata == bytes([0x5A] * 8)


def test_warm_llc_makes_accesses_hit():
    sim = Simulator()
    soc = CheshireSoC(sim)
    soc.dram.store.write(DRAM_BASE, bytes(range(64)))
    soc.warm_llc(DRAM_BASE, 4096)
    drv = sim.add(ManagerDriver(soc.core_port))
    op = drv.read(DRAM_BASE)
    sim.run_until(lambda: drv.idle, max_cycles=5000, what="driver")
    assert op.rdata == bytes(range(8))
    assert soc.llc.misses == 0
    assert soc.llc.hits >= 1


def test_single_source_latency_at_most_eight_cycles():
    """The paper's baseline: hot LLC, single manager, <= 8-cycle access."""
    sim = Simulator()
    soc = CheshireSoC(sim)
    soc.warm_llc(DRAM_BASE, 4096)
    trace = susan_like_trace(n_accesses=30, base=DRAM_BASE, footprint=4096,
                             gap_mean=0, beats=1)
    core = sim.add(CoreModel(soc.core_port, trace))
    sim.run_until(lambda: core.done, max_cycles=20_000, what="core")
    assert core.worst_case_latency <= 8


def test_dma_and_core_coexist():
    sim = Simulator()
    soc = CheshireSoC(sim)
    soc.warm_llc(DRAM_BASE, 32 * 1024)
    trace = susan_like_trace(n_accesses=30, base=DRAM_BASE, footprint=8192)
    core = sim.add(CoreModel(soc.core_port, trace))
    dma = sim.add(
        DmaEngine(soc.dma_port, src_base=DRAM_BASE + 8192, src_size=8192,
                  dst_base=SPM_BASE, dst_size=8192, burst_beats=64)
    )
    sim.run_until(lambda: core.done, max_cycles=100_000, what="core")
    assert dma.bytes_read > 0
    assert core.progress == 30


def test_realm_units_share_guarded_regfile():
    sim = Simulator()
    soc = CheshireSoC(sim)
    from repro.realm import BusGuardError
    from repro.realm import register_file as rf

    with pytest.raises(BusGuardError):
        soc.regfile.read(rf.unit_base(0) + rf.CTRL, tid=1)
    soc.regfile.write(0x0, 1, tid=1)  # claim
    value = soc.regfile.read(rf.unit_base(0) + rf.CTRL, tid=1)
    assert value & rf.CTRL_REGULATION_EN


def test_unprotected_manager_config():
    sim = Simulator()
    cfg = CheshireConfig(managers={"core": False, "dma": True})
    soc = CheshireSoC(sim, cfg)
    assert "core" not in soc.realm_units
    assert "dma" in soc.realm_units
    drv = sim.add(ManagerDriver(soc.core_port))
    op = drv.read(DRAM_BASE)
    sim.run_until(lambda: drv.idle, max_cycles=5000, what="driver")
    assert op.done


def test_realm_budget_enforced_in_system():
    sim = Simulator()
    soc = CheshireSoC(sim)
    soc.warm_llc(DRAM_BASE, 4096)
    unit = soc.realm("core")
    unit.configure_region(
        0, RegionConfig(base=DRAM_BASE, size=soc.config.dram_size,
                        budget_bytes=16, period_cycles=500)
    )
    drv = sim.add(ManagerDriver(soc.core_port))
    a = drv.read(DRAM_BASE)
    b = drv.read(DRAM_BASE + 8)
    c = drv.read(DRAM_BASE + 16)  # third access exceeds the 16 B budget
    sim.run_until(lambda: drv.idle, max_cycles=5000, what="driver")
    assert c.done_cycle >= 500
    assert max(a.done_cycle, b.done_cycle) < 500


def test_soc_idle_check():
    sim = Simulator()
    soc = CheshireSoC(sim)
    assert soc.idle()
