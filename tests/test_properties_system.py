"""System-level property-based tests (hypothesis).

These check the invariants that make AXI-REALM trustworthy as a safety
mechanism, under randomized workloads:

* budget conservation — a regulated manager never moves more bytes per
  period than budget + one fragment of overshoot;
* data integrity — random read/write mixes through crossbar + REALM
  return exactly what was written, for any fragmentation;
* write buffer — never forwards an AW whose data is not fully buffered.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.axi import AxiBundle
from repro.interconnect import AddressMap, AxiCrossbar
from repro.mem import SramMemory
from repro.realm import RealmUnit, RealmUnitParams, RegionConfig
from repro.sim import Simulator
from repro.traffic import BandwidthHog, ManagerDriver


# ----------------------------------------------------------------------
# budget conservation
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(
    budget=st.integers(min_value=64, max_value=1024).map(lambda b: b & ~7),
    period=st.sampled_from([200, 400, 800]),
    gran=st.sampled_from([1, 2, 4, 8]),
)
def test_property_budget_conserved_per_period(budget, period, gran):
    """A saturating reader behind REALM never exceeds budget + one
    fragment per period (checked over several periods)."""
    sim = Simulator()
    up = AxiBundle(sim, "up")
    down = AxiBundle(sim, "down")
    realm = sim.add(RealmUnit(up, down, RealmUnitParams()))
    sram = sim.add(SramMemory(down, base=0, size=0x10000))
    hog = sim.add(BandwidthHog(up, target_base=0, window=0x10000, beats=64))
    realm.set_granularity(gran)
    realm.configure_region(
        0, RegionConfig(base=0, size=0x10000, budget_bytes=budget,
                        period_cycles=period)
    )
    sim.run(10)  # apply reconfig before sampling periods

    fragment_bytes = gran * 8
    samples = []
    last_bytes = realm.region_snapshot(0).total_bytes
    cycles_into = realm.mr.regions[0].cycles_into_period
    # Align to the next period boundary, then sample three full periods.
    sim.run(period - cycles_into)
    last_bytes = realm.region_snapshot(0).total_bytes
    for _ in range(3):
        sim.run(period)
        now = realm.region_snapshot(0).total_bytes
        samples.append(now - last_bytes)
        last_bytes = now
    for moved in samples:
        assert moved <= budget + fragment_bytes, (
            f"budget {budget} violated: {moved} bytes in one period"
        )
    # The regulator is work-conserving: a saturating hog gets most of it.
    assert samples[-1] >= budget * 0.5


# ----------------------------------------------------------------------
# end-to-end data integrity under random mixes
# ----------------------------------------------------------------------
@settings(max_examples=10, deadline=None)
@given(data=st.data())
def test_property_random_traffic_data_integrity(data):
    """Random op mixes from two managers through REALM + crossbar return
    exactly the bytes written, at a random fragmentation."""
    gran = data.draw(st.sampled_from([1, 2, 4, 16]))
    sim = Simulator()
    amap = AddressMap()
    amap.add_range(0x0, 0x8000, port=0)
    sub = AxiBundle(sim, "mem")
    mgr_downs = []
    realms = []
    ups = []
    for i in range(2):
        u = AxiBundle(sim, f"m{i}")
        d = AxiBundle(sim, f"m{i}.down")
        realm = sim.add(RealmUnit(u, d, RealmUnitParams(), name=f"r{i}"))
        realm.set_granularity(gran)
        ups.append(u)
        mgr_downs.append(d)
        realms.append(realm)
    sim.add(AxiCrossbar(mgr_downs, [sub], amap))
    sim.add(SramMemory(sub, base=0, size=0x8000))
    drivers = [sim.add(ManagerDriver(u, name=f"d{i}"))
               for i, u in enumerate(ups)]

    # Disjoint address spaces per manager so writes never race; a flat
    # reference store per manager models the expected final memory (the
    # driver issues its writes in order, so overlaps resolve identically).
    from repro.mem import BackingStore

    references = [BackingStore(0x0, 0x4000), BackingStore(0x4000, 0x4000)]
    issued = []
    for mi, drv in enumerate(drivers):
        base = 0x0 if mi == 0 else 0x4000
        n_ops = data.draw(st.integers(min_value=1, max_value=5))
        for k in range(n_ops):
            beats = data.draw(st.sampled_from([1, 2, 8, 16]))
            offset = data.draw(
                st.integers(min_value=0, max_value=0x3000 // 8)
            ) * 8
            addr = base + offset
            payload = bytes(
                (mi * 61 + k * 13 + j) & 0xFF for j in range(beats * 8)
            )
            drv.write(addr, payload, beats=beats)
            references[mi].write(addr, payload)
            issued.append((mi, addr, beats))
    sim.run_until(lambda: all(d.idle for d in drivers), max_cycles=100_000,
                  what="writers")
    reads = [
        (mi, addr, beats, drivers[mi].read(addr, beats=beats))
        for mi, addr, beats in issued
    ]
    sim.run_until(lambda: all(d.idle for d in drivers), max_cycles=100_000,
                  what="readers")
    for mi, addr, beats, op in reads:
        assert op.rdata == references[mi].read(addr, beats * 8)


# ----------------------------------------------------------------------
# write buffer invariant
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(
    beats=st.sampled_from([1, 2, 4, 8, 16]),
    stall_after=st.integers(min_value=0, max_value=7),
)
def test_property_write_buffer_never_forwards_incomplete(beats, stall_after):
    """Whatever the W-stall pattern, downstream only ever sees complete
    bursts: the AW counter downstream equals the completed-burst count."""
    from repro.axi.beats import AWBeat, WBeat
    from repro.sim import Component

    sim = Simulator()
    up = AxiBundle(sim, "up")
    down = AxiBundle(sim, "down")
    realm = sim.add(RealmUnit(up, down, RealmUnitParams()))
    sram = sim.add(SramMemory(down, base=0, size=0x1000))

    sent = {"aw": False, "w": 0}

    class PartialWriter(Component):
        def tick(self, cycle):
            if not sent["aw"] and up.aw.can_send():
                up.aw.send(AWBeat(id=0, addr=0, beats=beats, size=3))
                sent["aw"] = True
                return
            if (
                sent["aw"]
                and sent["w"] < min(stall_after, beats)
                and up.w.can_send()
            ):
                sent["w"] += 1
                up.w.send(
                    WBeat(data=bytes(8), last=(sent["w"] == beats))
                )

    sim.add(PartialWriter())
    sim.run(300)
    complete = stall_after >= beats
    if complete:
        assert sram.writes_served == 1
    else:
        # Incomplete burst: nothing must have reached the memory.
        assert sram.writes_served == 0
        assert down.aw.sent_total == 0
