"""Live telemetry: wire framing, tap cadence and equivalence, the
socket control loop, and the sinks.

The two contracts under test (DESIGN.md section 12):

* **Tap equivalence** — frames pushed to a live consumer are
  byte-identical to the post-hoc ``[probes]`` timeseries of the same
  run, on both kernels; and
* **Observational transparency** — attaching, watching, pausing, and
  checkpointing over the socket never change a simulated observable: a
  paused knob write lands exactly like the equivalent scheduled one,
  and a detached tap leaves the kernel hook-for-hook untouched.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.control import ProbeError
from repro.realm import RegionConfig
from repro.scenario import (
    ScenarioError,
    expand,
    loads,
    run_campaign,
    run_point,
)
from repro.snapshot import capture_simulator, load_checkpoint
from repro.system import SystemBuilder
from repro.telemetry import (
    MAX_MESSAGE,
    CsvSink,
    JsonlSink,
    MemorySink,
    MessageDecoder,
    ProbeTap,
    TapError,
    TelemetryClient,
    TelemetryClientError,
    TelemetryError,
    TelemetryServer,
    WireError,
    encode_message,
    encode_payload,
    parse_target,
    recv_message,
    send_message,
)
from repro.telemetry.wire import HEADER
from repro.traffic import BandwidthHog, DmaEngine

PATTERNS = ("realm.dma.region0.total_bytes", "traffic.hog.bytes_stolen")
KNOB = "realm.dma.region0.budget_bytes"


def _system(active_set: bool = True, batched: bool = True):
    """The bench_control_overhead workload: dma + hog through a REALM."""
    system = (
        SystemBuilder(name="tele", active_set=active_set, batched=batched)
        .add_manager("dma", protect=True, granularity=16, regions=[
            RegionConfig(0x0, 0x20000, 1 << 40, 1000)
        ])
        .add_manager("hog")
        .add_sram("mem", base=0x0, size=0x20000)
        .add_sram("spm", base=0x100000, size=0x20000)
        .build()
    )
    system.attach("dma", lambda port: DmaEngine(
        port, src_base=0x0, src_size=0x8000,
        dst_base=0x100000, dst_size=0x8000, burst_beats=64,
    ))
    system.attach("hog", lambda port: BandwidthHog(port, window=0x8000))
    return system


# ----------------------------------------------------------------------
# wire format
# ----------------------------------------------------------------------
def test_wire_roundtrip_byte_by_byte():
    payload = {"cycle": 5, "values": {"x": 1}}
    assert encode_payload(payload) == b'{"cycle":5,"values":{"x":1}}'
    stream = encode_message(payload) + encode_message({"type": "ok"})
    decoder = MessageDecoder()
    received = []
    for i in range(len(stream)):  # worst-case fragmentation
        received.extend(decoder.feed(stream[i:i + 1]))
    assert received == [payload, {"type": "ok"}]
    # Whole stream in one feed decodes identically.
    assert MessageDecoder().feed(stream) == received


def test_wire_rejects_corrupt_framing():
    with pytest.raises(WireError, match="corrupt"):
        MessageDecoder().feed(HEADER.pack(MAX_MESSAGE + 1))
    with pytest.raises(WireError, match="undecodable"):
        MessageDecoder().feed(HEADER.pack(3) + b"\xff\xff\xff")
    with pytest.raises(WireError, match="not a JSON object"):
        MessageDecoder().feed(HEADER.pack(3) + b"[1]")
    with pytest.raises(WireError, match="exceeds"):
        encode_message({"x": "a" * MAX_MESSAGE})


def test_wire_blocking_helpers_over_a_socketpair():
    a, b = socket.socketpair()
    try:
        # Two messages land in one TCP chunk; the decoder must hand the
        # second one back on the next call instead of dropping it.
        a.sendall(encode_message({"n": 1}) + encode_message({"n": 2}))
        decoder = MessageDecoder()
        assert recv_message(b, decoder) == {"n": 1}
        send_message(a, {"n": 3})
        assert recv_message(b, decoder) == {"n": 2}
        assert recv_message(b, decoder) == {"n": 3}
        a.close()
        assert recv_message(b, decoder) is None  # clean EOF
    finally:
        b.close()


def test_parse_target():
    assert parse_target("9999") == ("127.0.0.1", 9999)
    assert parse_target("example:12") == ("example", 12)
    with pytest.raises(TelemetryClientError, match="malformed"):
        parse_target("no-port")


# ----------------------------------------------------------------------
# tap: cadence, equivalence, transparency
# ----------------------------------------------------------------------
@pytest.mark.parametrize("active_set,batched", [(True, True),
                                                (False, False)])
def test_tap_frames_match_schedule_sampler(active_set, batched):
    """The tap-equivalence contract, in-process, on both kernels: a tap
    with the sampler's cadence streams the sampler's exact timeseries."""
    sampled = _system(active_set, batched)
    sampled.control.sampler(list(PATTERNS), every=200)
    sampled.sim.run(2000)
    series = sampled.control.schedule.series["probes"]

    tapped = _system(active_set, batched)
    tap = ProbeTap(tapped.sim, tapped.control.probes)
    sink = MemorySink()
    tap.subscribe(sink, PATTERNS, every=200)
    tapped.sim.run(2000)

    assert len(series) == 9  # cycles 200..1800
    assert sink.dumps() == json.dumps(series, separators=(",", ":"))
    # The tap never perturbed the run: both systems end identically.
    assert tapped.control.sample("*") == sampled.control.sample("*")


def test_tap_detached_is_hookless_and_validates_subscriptions():
    system = _system()
    sim = system.sim
    baseline_hooks = len(sim._hook_heap)
    tap = ProbeTap(sim, system.control.probes)
    # Zero residue with nothing subscribed: no hooks, no poll callback.
    assert len(sim._hook_heap) == baseline_hooks
    assert sim._transient_hooks == 0
    assert sim._poll_fn is None

    sink = MemorySink()
    with pytest.raises(TapError, match=">= 1 cycle"):
        tap.subscribe(sink, PATTERNS, every=0)
    with pytest.raises(TapError, match="start must be"):
        tap.subscribe(sink, PATTERNS, every=10, start=-1)
    with pytest.raises(TapError, match="at least one"):
        tap.subscribe(sink, [], every=10)
    with pytest.raises(ProbeError):
        tap.subscribe(sink, ["no.such.probe"], every=10)
    assert sim._transient_hooks == 0  # rejected subscriptions armed nothing

    sub = tap.subscribe(sink, PATTERNS, every=100)
    assert sim._transient_hooks == 1
    tap.unsubscribe(sub)
    with pytest.raises(TapError, match="not attached"):
        tap.unsubscribe(sub)
    # The orphaned hook fires once as a no-op and does not re-arm.
    sim.run(250)
    assert sink.frames == []
    assert sim._transient_hooks == 0
    assert len(sim._hook_heap) == baseline_hooks


def test_tap_mid_run_subscription_joins_the_lattice():
    system = _system()
    system.sim.run(500)
    tap = ProbeTap(system.sim, system.control.probes)
    sink = MemorySink()
    sub = tap.subscribe(sink, PATTERNS, every=200)
    assert sub.first_cycle == 200
    system.sim.run(1500)  # now at cycle 2000
    # Late attach loses the early frames but never shifts the phase:
    # the first firing is the next lattice point at or after cycle 500.
    assert [f["cycle"] for f in sink.frames] == [600, 800, 1000, 1200,
                                                 1400, 1600, 1800]


def test_tap_rearms_across_a_simulator_reset():
    system = _system()
    tap = ProbeTap(system.sim, system.control.probes)
    sink = MemorySink()
    tap.subscribe(sink, PATTERNS, every=200)
    system.sim.run(450)
    system.sim.reset()
    assert system.sim._transient_hooks == 1  # re-armed by the reset hook
    system.sim.run(450)
    assert [f["cycle"] for f in sink.frames] == [200, 400, 200, 400]


def test_capture_tolerates_tap_hooks_and_restore_drops_them():
    """A checkpoint taken while a consumer watches is legal, and
    restoring it into a telemetry-free build continues bit-identically
    — the tap's transient hooks are execution, not simulated state."""
    watched = _system()
    tap = ProbeTap(watched.sim, watched.control.probes)
    sink = MemorySink()
    tap.subscribe(sink, PATTERNS, every=300)
    watched.sim.run(1000)
    state = capture_simulator(watched.sim)  # raises before this PR

    plain = _system()
    plain.restore(state)
    assert plain.sim.cycle == 1000
    assert plain.sim._transient_hooks == 0  # telemetry never restores

    reference = _system()
    reference.sim.run(2000)
    watched.sim.run(1000)
    plain.sim.run(1000)
    expected = reference.control.sample("*")
    assert watched.control.sample("*") == expected
    assert plain.control.sample("*") == expected


# ----------------------------------------------------------------------
# sinks
# ----------------------------------------------------------------------
def test_sinks_write_report_layer_shapes(tmp_path):
    system = _system()
    system.control.sampler(list(PATTERNS), every=200)
    tap = ProbeTap(system.sim, system.control.probes)
    csv_path = tmp_path / "live.csv"
    jsonl_path = tmp_path / "live.jsonl"
    with CsvSink(csv_path, point="pt") as csv_sink, \
            JsonlSink(jsonl_path) as jsonl_sink:
        def both(frame):
            csv_sink(frame)
            jsonl_sink(frame)
        tap.subscribe(both, PATTERNS, every=200)
        system.sim.run(1000)
    series = system.control.schedule.series["probes"]

    # JSONL: each line is the compact dump of one timeseries entry.
    lines = jsonl_path.read_text().splitlines()
    assert lines == [
        json.dumps(entry, separators=(",", ":")) for entry in series
    ]
    # CSV: header + the write_timeseries_csv row layout.
    rows = csv_path.read_text().splitlines()
    assert rows[0] == "label,rule,cycle,probe,value"
    first = series[0]
    first_probe = next(iter(first["values"]))
    assert rows[1] == (f"pt,probes,{first['cycle']},{first_probe},"
                       f"{first['values'][first_probe]}")
    assert len(rows) == 1 + len(series) * len(PATTERNS)


# ----------------------------------------------------------------------
# socket server: stream, pause/inspect/resume, checkpoint
# ----------------------------------------------------------------------
def test_server_stream_pause_set_checkpoint_resume(tmp_path):
    """The full control loop over a real socket, checked against the
    equivalent scheduled-knob run: pause at C + knob write + resume
    must reproduce ``schedule.at(C, set=...)`` exactly."""
    reference = _system()
    reference.control.sampler(list(PATTERNS), every=200)
    reference.control.at(1000, set={KNOB: 8192})
    reference.sim.run(4000)
    ref_series = reference.control.schedule.series["probes"]

    server = TelemetryServer()
    server.start()
    host, port = server.address
    system = _system()
    cp_path = tmp_path / "live.ckpt"
    runner = None
    try:
        with server.live_point(system, label="pt",
                               default_watch=(list(PATTERNS), 200, None)):
            client = TelemetryClient(host, port)
            hello = client.connect()
            assert hello["live"] is True
            assert hello["point"] == "pt"
            assert hello["probes"] == list(PATTERNS)

            # Queue watch + pause *before* the run starts: commands
            # drain at the first commit boundary, so nothing races.
            send_message(client._sock, {"id": 101, "type": "watch"})
            send_message(client._sock, {"id": 102, "type": "pause",
                                        "at": 1000})
            runner = threading.Thread(target=lambda: system.sim.run(4000))
            runner.start()

            frames = []
            watch_reply = paused_reply = None
            while paused_reply is None:
                message = client._next()
                assert message is not None
                if message.get("id") == 101:
                    watch_reply = message
                elif message.get("id") == 102:
                    paused_reply = message
                elif message.get("type") == "frame":
                    frames.append(message)
            assert watch_reply["type"] == "ok"
            assert watch_reply["paths"] == list(PATTERNS)
            # Pause at C parks with cycle == C + 1: the exact instant a
            # schedule.at(C) rule observes.  Frames through C arrived
            # before the pause notification.
            assert paused_reply["cycle"] == 1001
            assert [f["cycle"] for f in frames] == [200, 400, 600, 800,
                                                    1000]

            # Inspect and steer while parked at the boundary.
            assert client.get(KNOB) == 1 << 40
            assert client.set(KNOB, 8192)["value"] == 8192
            sampled = client.sample(*PATTERNS)
            assert sampled["cycle"] == 1001
            assert sampled["values"] == frames[-1]["values"]
            checkpointed = client.checkpoint(str(cp_path))
            assert checkpointed["cycle"] == 1001
            resumed_reply = client.resume()
            assert resumed_reply["type"] == "resumed"
            assert resumed_reply["cycle"] == 1001

            # Knob writes outside a pause are refused.
            with pytest.raises(TelemetryClientError, match="paused"):
                client.set(KNOB, 4096)

            # 14 frames remain (1200..3800); the "end" event only fires
            # when this live_point block exits, so count, don't wait.
            frames.extend(client.frames(count=14))
            runner.join(timeout=30)
            assert not runner.is_alive()
            client.close()
    finally:
        if runner is not None and runner.is_alive():  # unwedge on failure
            server.stop()
            runner.join(timeout=10)
        server.stop()

    # Live run == scheduled run, frame for frame and in the end state.
    live_series = [{"cycle": f["cycle"], "values": f["values"]}
                   for f in frames]
    assert (json.dumps(live_series, separators=(",", ":"))
            == json.dumps(ref_series, separators=(",", ":")))
    assert system.control.sample("*") == reference.control.sample("*")
    assert system.control.get(KNOB) == 8192

    # The socket-written checkpoint resumes into the same trajectory.
    _meta, state = load_checkpoint(cp_path)
    resumed = _system()
    resumed.restore(state)
    assert resumed.sim.cycle == 1001
    assert resumed.control.get(KNOB) == 8192
    resumed.sim.run(4000 - resumed.sim.cycle)
    assert resumed.control.sample("*") == reference.control.sample("*")


def test_abandoned_pause_auto_resumes():
    """A client that pauses and vanishes must not wedge the run."""
    server = TelemetryServer()
    server.start()
    host, port = server.address
    system = _system()
    try:
        with server.live_point(system, label="pt"):
            client = TelemetryClient(host, port)
            client.connect()
            send_message(client._sock, {"id": 1, "type": "pause"})
            runner = threading.Thread(target=lambda: system.sim.run(3000))
            runner.start()
            reply = client._next()
            assert reply["type"] == "paused"
            client.close()  # last client gone -> session auto-resumes
            runner.join(timeout=30)
            assert not runner.is_alive()
            assert system.sim.cycle == 3000
    finally:
        server.stop()


def test_live_point_guards_and_unattached_transparency():
    server = TelemetryServer()
    with pytest.raises(TelemetryError, match="not running"):
        with server.live_point(_system(), label="x"):
            pass
    server.start()
    try:
        uncontrolled = SystemBuilder(control=False).add_manager(
            "hog").add_sram("mem", base=0x0, size=0x10000).build()
        with pytest.raises(TelemetryError, match="control plane"):
            with server.live_point(uncontrolled, label="x"):
                pass

        # Attached-but-unwatched: the only residue is the poll seam —
        # no hooks, no schedule rules, and a clean detach afterwards.
        system = _system()
        baseline_hooks = len(system.sim._hook_heap)
        with server.live_point(system, label="pt") as session:
            assert system.sim._poll_fn.__self__ is session
            assert len(system.sim._hook_heap) == baseline_hooks
            assert system.sim._transient_hooks == 0
            assert not system.control.configured  # nothing in the digest
            with pytest.raises(TelemetryError, match="already attached"):
                with server.live_point(system, label="again"):
                    pass
            system.sim.run(500)
        assert system.sim._poll_fn is None

        # Telemetry forces sequential campaign execution.
        spec = loads("""
[scenario]
name = "mini"
seed = 1
[run]
horizon = 100
[topology]
[[topology.managers]]
name = "hog"
[[topology.memories]]
name = "mem"
kind = "sram"
base = 0x0
size = 0x10000
[traffic.hog]
kind = "hog"
window = 0x8000
""")
        with pytest.raises(ScenarioError, match="sequential"):
            run_campaign(spec, jobs=2, telemetry=server)
    finally:
        server.stop()


# ----------------------------------------------------------------------
# scenario runner integration
# ----------------------------------------------------------------------
STREAMED = """
[scenario]
name = "streamed"
seed = 3

[run]
horizon = 40_000

[topology]
[[topology.managers]]
name = "hog"

[[topology.memories]]
name = "mem"
kind = "sram"
base = 0x0
size = 0x1_0000

[traffic.hog]
kind = "hog"
window = 0x8000
beats = 16

[probes]
every = 2_000
start = 30_000
sample = ["traffic.hog.bytes_stolen", "port.hog.r.recv"]
"""


def test_run_point_streams_the_recorded_timeseries():
    """End-to-end tap equivalence through the runner: a socket watcher
    of a ``[probes]`` point receives, byte for byte, the timeseries the
    point records.  The late ``start`` leaves the watcher tens of
    thousands of cycles to subscribe, so the test cannot race."""
    spec = loads(STREAMED)
    server = TelemetryServer()
    server.start()
    host, port = server.address
    collected: list[dict] = []
    failures: list[BaseException] = []
    connected = threading.Event()

    def consume() -> None:
        try:
            client = TelemetryClient(host, port, timeout=60.0)
            client.connect()
            connected.set()
            while True:  # the point attaches moments after we connect
                try:
                    client.watch()
                    break
                except TelemetryClientError as exc:
                    if "no live point" not in str(exc):
                        raise
                    time.sleep(0.01)
            collected.extend(client.frames())
            client.close()
        except BaseException as exc:  # surface in the main thread
            failures.append(exc)
            connected.set()

    watcher = threading.Thread(target=consume, daemon=True)
    watcher.start()
    try:
        assert connected.wait(10)
        assert not failures
        result = run_point(expand(spec)[0], telemetry=server)
        watcher.join(timeout=60)
        assert not watcher.is_alive()
    finally:
        server.stop()
    assert not failures

    series = result.timeseries["probes"]
    assert series and series[0]["cycle"] == 30_000
    live = [{"cycle": f["cycle"], "values": f["values"]}
            for f in collected]
    assert (json.dumps(live, separators=(",", ":"))
            == json.dumps(series, separators=(",", ":")))
    for frame in collected:
        assert frame["point"] == "streamed"
