"""Flight recorder, metrics registry, journal, and trace exporter.

The load-bearing guarantee (DESIGN.md section 15): observability is
execution-side only.  Attaching a recorder — with or without a journal —
must leave every simulated observable byte-identical: digests match the
golden traces, JSON reports match bare runs, snapshots capture the same
tree.  The recorder may *watch* execution (wake causes, occupancy,
phases, checkpoints) but never steer it.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs import (
    EventJournal,
    FlightRecorder,
    MetricsRegistry,
    campaign_trace,
)
from repro.realm import RegionConfig
from repro.scenario import load_file, run_campaign
from repro.scenario.runner import run_point
from repro.scenario.sweep import apply_smoke, expand
from repro.sim import SimulationError
from repro.snapshot import capture_simulator, restore_simulator
from repro.system import SystemBuilder
from repro.traffic import DmaEngine

SCENARIO_DIR = Path(__file__).resolve().parent.parent / "scenarios"
GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
SCENARIOS = sorted(SCENARIO_DIR.glob("*.toml"))


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------
def test_registry_counter_gauge_histogram():
    registry = MetricsRegistry()
    counter = registry.counter("kernel.ticks")
    counter.inc()
    counter.inc(4)
    registry.gauge("kernel.cycle").set(77)
    hist = registry.histogram("kernel.active_set")
    hist.observe(3)
    hist.observe(3)
    hist.observe(5, count=2)
    assert hist.total() == 4
    snap = registry.snapshot()
    assert snap["counters"] == {"kernel.ticks": 5}
    assert snap["gauges"] == {"kernel.cycle": 77}
    assert snap["histograms"] == {
        "kernel.active_set": {"counts": {"3": 2, "5": 2}}
    }


def test_registry_accessors_are_get_or_create():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert len(registry) == 1


def test_registry_kind_mismatch_raises():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError, match="registered as counter"):
        registry.gauge("x")
    registry.gauge("g")
    with pytest.raises(TypeError, match="registered as gauge"):
        registry.histogram("g")


def test_registry_snapshot_is_json_safe_and_sorted():
    registry = MetricsRegistry()
    registry.counter("b.two").inc()
    registry.counter("a.one").inc()
    snap = registry.snapshot()
    json.dumps(snap)
    assert list(snap["counters"]) == ["a.one", "b.two"]


# ----------------------------------------------------------------------
# event journal
# ----------------------------------------------------------------------
def test_journal_bounded_ring_counts_drops():
    journal = EventJournal(capacity=4)
    for i in range(7):
        journal.append((i, "wake", "c", "channel"))
    assert len(journal) == 4
    assert journal.dropped == 3
    assert [e[0] for e in journal.events()] == [3, 4, 5, 6]


def test_journal_drain_keeps_drop_count():
    journal = EventJournal(capacity=2)
    for i in range(3):
        journal.append((i, "sleep", "c"))
    drained = journal.drain()
    assert [e[0] for e in drained] == [1, 2]
    assert len(journal) == 0
    assert journal.dropped == 1


def test_journal_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        EventJournal(capacity=0)


# ----------------------------------------------------------------------
# recorder attachment contract
# ----------------------------------------------------------------------
def _small_system():
    system = (
        SystemBuilder(name="obs", control=False)
        .add_manager("dma", protect=True, granularity=16, regions=[
            RegionConfig(0x0, 0x20000, 1 << 40, 1000)
        ])
        .add_sram("mem", base=0x0, size=0x20000)
        .add_sram("spm", base=0x100000, size=0x20000)
        .build()
    )
    system.attach("dma", lambda port: DmaEngine(
        port, src_base=0x0, src_size=0x4000,
        dst_base=0x100000, dst_size=0x4000, burst_beats=16,
    ))
    return system


def test_double_attach_raises():
    system = _small_system()
    FlightRecorder().attach(system.sim)
    with pytest.raises(SimulationError, match="already attached"):
        FlightRecorder().attach(system.sim)


def test_detach_restores_plain_dispatch():
    system = _small_system()
    sim = system.sim
    recorder = FlightRecorder().attach(sim)
    assert "step" in sim.__dict__  # recorded body bound directly
    recorder.detach()
    assert sim._recorder is None
    assert sim._rec_journal is None
    assert "step" not in sim.__dict__
    sim.run(50)  # plain path still runs


def test_detached_simulator_pays_one_attribute():
    system = _small_system()
    assert system.sim._recorder is None
    assert system.sim._rec_journal is None


def test_recorder_counts_without_journal():
    system = _small_system()
    recorder = FlightRecorder().attach(system.sim)
    assert recorder.journal is None
    system.sim.run(200)
    snap = recorder.snapshot()
    assert snap["counters"]["kernel.ticks_executed"] > 0
    assert snap["histograms"]["kernel.active_set"]["counts"]
    assert snap["gauges"]["phase.sample_stride"] >= 1


def test_sleep_counter_matches_journal_exactly():
    # The registry derives sleeps from wake attribution instead of
    # paying a per-event store; the journal records the exact events —
    # the two must agree when nothing was dropped.
    system = _small_system()
    recorder = FlightRecorder(journal=True).attach(system.sim)
    system.sim.run(500)
    snap = recorder.snapshot()
    assert recorder.journal.dropped == 0
    journal_sleeps = sum(
        1 for e in recorder.journal.events() if e[1] == "sleep"
    )
    assert snap["counters"]["kernel.sleeps"] == journal_sleeps
    wake_counters = {
        k: v for k, v in snap["counters"].items() if k.startswith("wake.")
    }
    journal_wakes = sum(
        1 for e in recorder.journal.events()
        if e[1] == "wake" and e[3] != "attach"
    )
    assert sum(wake_counters.values()) == journal_wakes


# ----------------------------------------------------------------------
# snapshot invisibility
# ----------------------------------------------------------------------
def test_recorder_invisible_to_snapshots():
    bare = _small_system()
    bare.sim.run(100)
    recorded = _small_system()
    recorder = FlightRecorder(journal=True).attach(recorded.sim)
    recorded.sim.run(100)
    assert capture_simulator(bare.sim) == capture_simulator(recorded.sim)
    assert recorder.journal is not None


def test_recorder_journals_checkpoint_roundtrip():
    system = _small_system()
    recorder = FlightRecorder(journal=True).attach(system.sim)
    sim = system.sim
    sim.run(64)
    tree = capture_simulator(sim)
    sim.run(64)
    restore_simulator(sim, tree)
    kinds = [(e[1], e[2]) for e in recorder.journal.events()
             if e[1] == "ckpt"]
    assert kinds == [("ckpt", "capture"), ("ckpt", "restore")]
    snap = recorder.snapshot()
    assert snap["counters"]["snapshot.captures"] == 1
    assert snap["counters"]["snapshot.restores"] == 1
    assert snap["gauges"]["phase.snapshot_seconds"] > 0


# ----------------------------------------------------------------------
# digest neutrality: every shipped scenario, both kernels
# ----------------------------------------------------------------------
_NEUTRALITY_CASES = [
    pytest.param(path, active_set,
                 id=f"{path.stem}-{'active' if active_set else 'naive'}")
    for path in SCENARIOS
    for active_set in (True, False)
]


@pytest.mark.parametrize("scenario_path,active_set", _NEUTRALITY_CASES)
def test_recorded_run_matches_golden(scenario_path, active_set):
    spec = load_file(scenario_path)
    result = run_campaign(
        spec, smoke=True, active_set=active_set, record=True
    )
    golden = json.loads(
        (GOLDEN_DIR / f"{scenario_path.stem}.json").read_text(
            encoding="utf-8"
        )
    )
    assert result.digest() == golden, (
        f"{scenario_path.stem} digest drifted with the flight recorder "
        f"attached — observability must be execution-side only"
    )
    # Every point carried its execution-side payloads...
    assert all(p.metrics is not None for p in result.points)
    assert all(p.trace is not None for p in result.points)
    # ...and none of them leaked into the report.
    report = result.to_json_dict()
    assert "metrics" not in json.dumps(report)


@pytest.mark.parametrize("active_set", [True, False],
                         ids=["active", "naive"])
def test_recorded_report_byte_identical(active_set):
    spec = load_file(SCENARIO_DIR / "stream_steady.toml")
    bare = run_campaign(spec, smoke=True, active_set=active_set)
    recorded = run_campaign(
        spec, smoke=True, active_set=active_set, record=True
    )
    encode = lambda r: json.dumps(r.to_json_dict(), sort_keys=True)
    assert encode(bare) == encode(recorded)


# ----------------------------------------------------------------------
# trace exporter
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fig6a_trace():
    spec = load_file(SCENARIO_DIR / "fig6a.toml")
    result = run_campaign(spec, smoke=True, record=True)
    return campaign_trace(result), result


def test_trace_shape(fig6a_trace):
    trace, result = fig6a_trace
    assert set(trace) == {"traceEvents", "displayTimeUnit", "metadata"}
    meta = trace["metadata"]
    assert meta["version"] == 1
    assert meta["scenario"] == "fig6a"
    assert meta["ts_unit"] == "simulated cycles"
    assert set(meta["points"]) == {p.label for p in result.points}
    json.dumps(trace)  # serializable end to end


def test_trace_events_are_well_formed(fig6a_trace):
    trace, _ = fig6a_trace
    events = trace["traceEvents"]
    assert events
    for event in events:
        assert {"name", "ph", "pid"} <= set(event)
        if event["ph"] == "X":
            assert {"ts", "dur", "tid"} <= set(event)
            assert event["dur"] >= 0
        elif event["ph"] == "i":
            assert event["s"] == "t"
    kinds = {e["ph"] for e in events}
    assert "X" in kinds and "M" in kinds


def test_trace_slices_monotonic_per_track(fig6a_trace):
    trace, _ = fig6a_trace
    last_start: dict = {}
    last_end: dict = {}
    for event in trace["traceEvents"]:
        if event["ph"] != "X":
            continue
        track = (event["pid"], event["tid"], event["name"])
        assert event["ts"] >= last_start.get(track, 0)
        # Same-name slices on one track never overlap.
        assert event["ts"] >= last_end.get(track, 0)
        last_start[track] = event["ts"]
        last_end[track] = event["ts"] + event["dur"]


def test_trace_has_component_awake_slices(fig6a_trace):
    trace, result = fig6a_trace
    named_threads = {
        (e["pid"], e["args"]["name"])
        for e in trace["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    component_names = {name for _, name in named_threads}
    assert "kernel" in component_names
    assert len(component_names) > 1  # real component tracks exist
    awake = [e for e in trace["traceEvents"]
             if e["ph"] == "X" and e["name"] == "awake"]
    assert awake
    assert {"woken_by"} <= set(awake[0]["args"])


def test_trace_metadata_carries_wake_causes(fig6a_trace):
    trace, result = fig6a_trace
    for label, metrics in trace["metadata"]["points"].items():
        wake_counters = {
            name: value
            for name, value in metrics["counters"].items()
            if name.startswith("wake.")
        }
        assert wake_counters, f"point {label} has no wake attribution"


def test_point_run_without_record_has_no_payloads():
    spec = apply_smoke(load_file(SCENARIO_DIR / "stream_steady.toml"))
    point = expand(spec)[0]
    result = run_point(point)
    assert result.metrics is None
    assert result.trace is None
    assert result.span_stats is None
