"""Property-based verification of the LLC against a flat reference model.

Any sequence of reads/writes through LLC + DRAM must be indistinguishable
from the same sequence against a plain byte array — across random
footprints that force evictions and write-backs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.axi import AxiBundle
from repro.mem import BackingStore, CacheLLC, DramModel
from repro.sim import Simulator
from repro.traffic import ManagerDriver


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_property_cache_matches_reference_model(data):
    sim = Simulator()
    front = AxiBundle(sim, "f")
    back = AxiBundle(sim, "b")
    # Tiny cache (2 sets x 2 ways x 64 B = 256 B) over a 4 KiB footprint:
    # almost every access evicts, exercising write-back heavily.
    llc = sim.add(
        CacheLLC(front, back, line_bytes=64, ways=2, capacity=256)
    )
    dram = sim.add(DramModel(back, base=0, size=4096))
    drv = sim.add(ManagerDriver(front))
    reference = BackingStore(0, 4096)

    n_ops = data.draw(st.integers(min_value=3, max_value=12))
    expected = []
    for k in range(n_ops):
        is_write = data.draw(st.booleans())
        beats = data.draw(st.sampled_from([1, 2, 8]))
        addr = data.draw(
            st.integers(min_value=0, max_value=(4096 - beats * 8) // 8)
        ) * 8
        if is_write:
            payload = bytes((k * 37 + j) & 0xFF for j in range(beats * 8))
            drv.write(addr, payload, beats=beats)
            reference.write(addr, payload)
        else:
            op = drv.read(addr, beats=beats)
            expected.append((op, addr, beats * 8))
        # Serialise against the reference by completing each op in turn.
        sim.run_until(lambda: drv.idle, max_cycles=100_000, what="op")
        for op, a, n in expected:
            assert op.rdata == reference.read(a, n)
        expected.clear()
    # Final sweep: every line (cached or written back) matches.
    for addr in range(0, 4096, 512):
        op = drv.read(addr, beats=8)
        sim.run_until(lambda: drv.idle, max_cycles=100_000, what="sweep")
        assert op.rdata == reference.read(addr, 64)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=999),
    ways=st.sampled_from([1, 2, 4]),
)
def test_property_resident_lines_never_exceed_capacity(seed, ways):
    import random

    sim = Simulator()
    front = AxiBundle(sim, "f")
    back = AxiBundle(sim, "b")
    capacity = 64 * ways * 4  # 4 sets
    llc = sim.add(
        CacheLLC(front, back, line_bytes=64, ways=ways, capacity=capacity)
    )
    sim.add(DramModel(back, base=0, size=64 * 1024))
    drv = sim.add(ManagerDriver(front))
    rng = random.Random(seed)
    for _ in range(20):
        drv.read(rng.randrange(0, 64 * 1024 // 8) * 8)
    sim.run_until(lambda: drv.idle, max_cycles=200_000, what="reads")
    assert llc.resident_lines <= capacity // 64
