"""Unit tests for AXI beat records and validation."""

import pytest

from repro.axi import (
    ARBeat,
    AWBeat,
    AtomicOp,
    BurstType,
    Resp,
    bytes_per_beat,
    merge_resp,
    validate_addr_beat,
)


def test_axlen_is_beats_minus_one():
    aw = AWBeat(id=0, addr=0, beats=16, size=3)
    assert aw.axlen == 15
    ar = ARBeat(id=0, addr=0, beats=1, size=2)
    assert ar.axlen == 0


def test_total_bytes():
    aw = AWBeat(id=0, addr=0, beats=4, size=3)  # 4 beats x 8 B
    assert aw.total_bytes == 32
    ar = ARBeat(id=0, addr=0, beats=256, size=3)
    assert ar.total_bytes == 2048


def test_copy_is_independent():
    aw = AWBeat(id=1, addr=0x100, beats=8, size=3, atop=AtomicOp.SWAP)
    cp = aw.copy()
    cp.addr = 0x200
    assert aw.addr == 0x100
    assert cp.atop == AtomicOp.SWAP


def test_bytes_per_beat_range():
    assert bytes_per_beat(0) == 1
    assert bytes_per_beat(3) == 8
    assert bytes_per_beat(7) == 128
    with pytest.raises(ValueError):
        bytes_per_beat(8)
    with pytest.raises(ValueError):
        bytes_per_beat(-1)


def test_merge_resp_keeps_most_severe():
    assert merge_resp(Resp.OKAY, Resp.OKAY) == Resp.OKAY
    assert merge_resp(Resp.OKAY, Resp.SLVERR) == Resp.SLVERR
    assert merge_resp(Resp.DECERR, Resp.SLVERR) == Resp.DECERR
    assert merge_resp(Resp.EXOKAY, Resp.OKAY) == Resp.EXOKAY


def test_resp_is_error():
    assert Resp.SLVERR.is_error
    assert Resp.DECERR.is_error
    assert not Resp.OKAY.is_error
    assert not Resp.EXOKAY.is_error


def test_validate_rejects_zero_length():
    with pytest.raises(ValueError):
        validate_addr_beat(AWBeat(id=0, addr=0, beats=0, size=3))


def test_validate_rejects_long_incr():
    with pytest.raises(ValueError):
        validate_addr_beat(ARBeat(id=0, addr=0, beats=257, size=3))


def test_validate_rejects_long_fixed_and_wrap():
    with pytest.raises(ValueError):
        validate_addr_beat(
            AWBeat(id=0, addr=0, beats=17, size=3, burst=BurstType.FIXED)
        )
    with pytest.raises(ValueError):
        validate_addr_beat(
            AWBeat(id=0, addr=0, beats=32, size=3, burst=BurstType.WRAP)
        )


def test_validate_wrap_length_power_of_two():
    with pytest.raises(ValueError):
        validate_addr_beat(
            ARBeat(id=0, addr=0, beats=3, size=3, burst=BurstType.WRAP)
        )
    validate_addr_beat(ARBeat(id=0, addr=0, beats=4, size=3, burst=BurstType.WRAP))


def test_validate_wrap_requires_aligned_address():
    with pytest.raises(ValueError):
        validate_addr_beat(
            ARBeat(id=0, addr=0x4, beats=4, size=3, burst=BurstType.WRAP)
        )


def test_validate_accepts_max_incr():
    validate_addr_beat(ARBeat(id=0, addr=0, beats=256, size=3))
