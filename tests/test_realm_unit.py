"""Integration tests for the full REALM unit (driver -> realm -> SRAM)."""

import pytest

from repro.realm import (
    RealmUnit,
    RealmUnitParams,
    RegionConfig,
    UNLIMITED,
)
from repro.axi import AxiBundle, Resp
from repro.mem import SramMemory
from repro.sim import Simulator
from repro.traffic.driver import ManagerDriver

from helpers import build_realm_system


def finish(sim, drv, max_cycles=100_000):
    sim.run_until(lambda: drv.idle, max_cycles=max_cycles, what="driver")


# ----------------------------------------------------------------------
# transparent data path
# ----------------------------------------------------------------------
def test_passthrough_read_write(sim):
    drv, realm, sram = build_realm_system(sim)
    payload = bytes(range(8))
    drv.write(0x100, payload)
    op = drv.read(0x100)
    finish(sim, drv)
    assert op.resp == Resp.OKAY
    assert op.rdata == payload


def test_burst_roundtrip_with_fragmentation(sim):
    drv, realm, sram = build_realm_system(sim)
    realm.set_granularity(4)
    payload = bytes(i & 0xFF for i in range(16 * 8))
    drv.write(0x0, payload, beats=16)
    op = drv.read(0x0, beats=16)
    finish(sim, drv)
    assert op.rdata == payload
    # 16-beat bursts at granularity 4: each burst split into 4 fragments.
    assert realm.splitter.bursts_split == 2
    assert sram.reads_served == 4  # four fragment bursts at the memory


def test_single_b_response_after_coalescing(sim):
    """The manager sees exactly one B per original write burst."""
    drv, realm, sram = build_realm_system(sim)
    realm.set_granularity(1)
    op = drv.write(0x0, bytes(64), beats=8)
    finish(sim, drv)
    assert op.done
    assert sram.writes_served == 8  # 8 fragments downstream
    assert len(drv.completed) == 1  # 1 response upstream


def test_r_last_gating_presents_single_burst(sim):
    """Fragmented reads come back as one continuous R burst upstream."""
    drv, realm, sram = build_realm_system(sim)
    realm.set_granularity(2)
    op = drv.read(0x0, beats=8)
    finish(sim, drv)
    assert op.done
    assert len(op.rdata) == 64  # all 8 beats of data arrived
    assert sram.reads_served == 4


def test_added_latency_is_small(sim):
    """REALM adds one registered hop per direction over a direct link."""
    # Direct: driver -> SRAM.
    sim_direct = Simulator()
    port = AxiBundle(sim_direct, "direct")
    SramMemory_direct = SramMemory(port, base=0, size=0x1000)
    sim_direct.add(SramMemory_direct)
    drv_direct = sim_direct.add(ManagerDriver(port))
    op_direct = drv_direct.read(0x0)
    sim_direct.run_until(lambda: drv_direct.idle, max_cycles=1000, what="drv")

    drv, realm, sram = build_realm_system(sim)
    op = drv.read(0x0)
    finish(sim, drv)
    added = op.latency - op_direct.latency
    assert 1 <= added <= 2


# ----------------------------------------------------------------------
# budget / period regulation
# ----------------------------------------------------------------------
def test_budget_depletion_blocks_until_replenish(sim):
    drv, realm, sram = build_realm_system(sim)
    realm.configure_region(
        0, RegionConfig(base=0, size=0x10000, budget_bytes=64, period_cycles=200)
    )
    # 8 single-beat reads of 8 B each = 64 B: first period's budget.
    ops = [drv.read(i * 8) for i in range(8)]
    blocked = drv.read(0x800)  # 9th access must wait for the next period
    finish(sim, drv, max_cycles=3000)
    first_period_done = [op.done_cycle for op in ops]
    assert max(first_period_done) < 200
    assert blocked.done_cycle >= 200  # served only after replenish


def test_regulation_disabled_never_blocks(sim):
    drv, realm, sram = build_realm_system(sim)
    realm.configure_region(
        0, RegionConfig(base=0, size=0x10000, budget_bytes=8, period_cycles=10_000)
    )
    realm.set_regulation_enabled(False)
    ops = [drv.read(i * 8) for i in range(4)]
    finish(sim, drv, max_cycles=2000)
    assert all(op.done for op in ops)
    assert sim.cycle < 2000


def test_unmatched_address_not_charged(sim):
    drv, realm, sram = build_realm_system(sim)
    realm.configure_region(
        0, RegionConfig(base=0, size=0x100, budget_bytes=8, period_cycles=100_000)
    )
    # Accesses outside the region flow freely and spend no budget.
    for i in range(4):
        drv.read(0x1000 + i * 8)
    finish(sim, drv, max_cycles=5000)
    assert realm.mr.regions[0].remaining == 8
    assert not realm.budget_exhausted
    # An in-region access then depletes it and isolates the manager.
    drv.read(0x0)
    finish(sim, drv, max_cycles=5000)
    sim.run(5)
    assert realm.budget_exhausted
    assert realm.isolated


def test_two_regions_independent_budgets(sim):
    params = RealmUnitParams(n_regions=2)
    drv, realm, sram = build_realm_system(sim, params=params)
    realm.configure_region(
        0, RegionConfig(base=0x0, size=0x1000, budget_bytes=8, period_cycles=500)
    )
    realm.configure_region(
        1, RegionConfig(base=0x1000, size=0x1000, budget_bytes=UNLIMITED,
                        period_cycles=UNLIMITED)
    )
    a = drv.read(0x0)  # depletes region 0
    finish(sim, drv, max_cycles=5000)
    # Region 0 depleted isolates the whole manager (paper: "if at least one
    # of the regions has no budget left, the manager interface is isolated").
    b = drv.read(0x1000)
    sim.run(50)
    assert not b.done
    finish(sim, drv, max_cycles=5000)
    assert b.done  # replenish at period boundary unblocks


def test_budget_exhausted_engages_isolation(sim):
    drv, realm, sram = build_realm_system(sim)
    realm.configure_region(
        0, RegionConfig(base=0, size=0x10000, budget_bytes=8, period_cycles=400)
    )
    drv.read(0x0)
    sim.run(100)
    assert realm.budget_exhausted
    assert realm.isolated  # drained and cut off
    finish(sim, drv, max_cycles=2000)


# ----------------------------------------------------------------------
# user isolation
# ----------------------------------------------------------------------
def test_user_isolation_blocks_new_transactions(sim):
    drv, realm, sram = build_realm_system(sim)
    realm.set_user_isolate(True)
    op = drv.read(0x0)
    sim.run(200)
    assert not op.done
    assert realm.isolated
    assert realm.isolation.blocked_ar > 0


def test_user_isolation_lets_outstanding_complete(sim):
    drv, realm, sram = build_realm_system(sim)
    op = drv.read(0x0, beats=64)
    sim.run(10)  # transaction is in flight
    realm.set_user_isolate(True)
    finish(sim, drv, max_cycles=2000)
    assert op.done  # outstanding transaction completed
    assert realm.isolated


def test_release_isolation_resumes_traffic(sim):
    drv, realm, sram = build_realm_system(sim)
    realm.set_user_isolate(True)
    op = drv.read(0x0)
    sim.run(100)
    assert not op.done
    realm.set_user_isolate(False)
    finish(sim, drv, max_cycles=2000)
    assert op.done


# ----------------------------------------------------------------------
# intrusive reconfiguration
# ----------------------------------------------------------------------
def test_granularity_reconfig_drains_first(sim):
    drv, realm, sram = build_realm_system(sim)
    drv.read(0x0, beats=32)
    sim.run(5)
    realm.set_granularity(2)
    # The change is pending until the unit drains.
    assert realm.config.granularity != 2 or realm.isolated
    finish(sim, drv, max_cycles=5000)
    sim.run(10)
    assert realm.config.granularity == 2
    assert not realm.isolated  # released after applying
    # New transactions flow at the new granularity.
    drv.read(0x0, beats=8)
    finish(sim, drv, max_cycles=5000)
    assert realm.splitter.bursts_split >= 1


def test_granularity_validation(sim):
    drv, realm, sram = build_realm_system(sim)
    with pytest.raises(ValueError):
        realm.set_granularity(0)
    with pytest.raises(ValueError):
        realm.set_granularity(257)
    # Granularity above the write buffer depth is legal: the write path is
    # clamped to the buffer depth while reads fragment at the full value.
    realm.set_granularity(32)
    sim.run(5)
    assert realm.granularity == 32
    assert realm.granularity_aw == realm.params.write_buffer_depth


def test_region_reconfig_applies_after_drain(sim):
    drv, realm, sram = build_realm_system(sim)
    cfg = RegionConfig(base=0x0, size=0x10000, budget_bytes=512,
                       period_cycles=1000)
    realm.configure_region(0, cfg)
    sim.run(5)
    assert realm.mr.regions[0].config.budget_bytes == 512


def test_region_index_validation(sim):
    drv, realm, sram = build_realm_system(sim)
    with pytest.raises(IndexError):
        realm.configure_region(7, RegionConfig())


# ----------------------------------------------------------------------
# monitoring
# ----------------------------------------------------------------------
def test_bookkeeping_tracks_bytes_and_txns(sim):
    drv, realm, sram = build_realm_system(sim)
    realm.configure_region(
        0, RegionConfig(base=0, size=0x10000, budget_bytes=UNLIMITED,
                        period_cycles=UNLIMITED)
    )
    drv.read(0x0, beats=4)  # 32 B
    drv.write(0x100, bytes(8))  # 8 B
    finish(sim, drv)
    sim.run(5)
    snap = realm.region_snapshot(0)
    assert snap.read_bytes == 32
    assert snap.write_bytes == 8
    assert snap.total_bytes == 40
    assert snap.txn_count == 2


def test_bookkeeping_latency_visible(sim):
    drv, realm, sram = build_realm_system(sim)
    realm.configure_region(
        0, RegionConfig(base=0, size=0x10000, budget_bytes=UNLIMITED,
                        period_cycles=UNLIMITED)
    )
    op = drv.read(0x0)
    finish(sim, drv)
    sim.run(5)
    snap = realm.region_snapshot(0)
    assert snap.txn_count == 1
    # Latency at the M&R egress is smaller than the end-to-end latency.
    assert 0 < snap.latency_max <= op.latency
    assert snap.latency_min <= snap.latency_avg <= snap.latency_max


def test_throttle_enabled_limits_outstanding(sim):
    params = RealmUnitParams(max_pending=4)
    drv, realm, sram = build_realm_system(sim, params=params)
    realm.configure_region(
        0, RegionConfig(base=0, size=0x10000, budget_bytes=10_000,
                        period_cycles=100_000)
    )
    realm.set_throttle_enabled(True)
    for i in range(6):
        drv.read(i * 8)
    finish(sim, drv, max_cycles=10_000)
    assert all(op.done for op in drv.completed)
