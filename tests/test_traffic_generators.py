"""Tests for the core model, DMA engine, and malicious managers."""

import pytest

from repro.axi import AxiBundle
from repro.mem import SramMemory
from repro.sim import Simulator
from repro.traffic import (
    BandwidthHog,
    CoreModel,
    DmaEngine,
    StallingWriter,
    TricklingWriter,
    sequential_trace,
    susan_like_trace,
)


def make_mem_system(size=0x40000):
    sim = Simulator()
    port = AxiBundle(sim, "mem")
    sram = sim.add(SramMemory(port, base=0, size=size))
    return sim, port, sram


# ----------------------------------------------------------------------
# core model
# ----------------------------------------------------------------------
def test_core_executes_trace_to_completion():
    sim, port, sram = make_mem_system()
    trace = susan_like_trace(n_accesses=20, footprint=4096)
    core = sim.add(CoreModel(port, trace))
    sim.run_until(lambda: core.done, max_cycles=10_000, what="core")
    assert core.progress == 20
    assert len(core.latencies) == 20
    assert core.execution_cycles > 0


def test_core_blocking_one_outstanding():
    """Total cycles >= sum of latencies (blocking core)."""
    sim, port, sram = make_mem_system()
    trace = sequential_trace(10, gap=0)
    core = sim.add(CoreModel(port, trace))
    sim.run_until(lambda: core.done, max_cycles=10_000, what="core")
    assert core.execution_cycles >= sum(core.latencies) - 1


def test_core_gaps_add_compute_time():
    results = {}
    for gap in (0, 10):
        sim, port, sram = make_mem_system()
        trace = sequential_trace(10, gap=gap)
        core = sim.add(CoreModel(port, trace))
        sim.run_until(lambda: core.done, max_cycles=10_000, what="core")
        results[gap] = core.execution_cycles
    assert results[10] >= results[0] + 9 * 10


def test_core_metrics():
    sim, port, sram = make_mem_system()
    core = sim.add(CoreModel(port, sequential_trace(5)))
    sim.run_until(lambda: core.done, max_cycles=10_000, what="core")
    assert core.worst_case_latency >= core.avg_latency > 0


def test_core_writes_complete():
    sim, port, sram = make_mem_system()
    trace = sequential_trace(5, kind="write", beats=2)
    core = sim.add(CoreModel(port, trace))
    sim.run_until(lambda: core.done, max_cycles=10_000, what="core")
    assert sram.writes_served == 5


# ----------------------------------------------------------------------
# DMA engine
# ----------------------------------------------------------------------
def test_dma_moves_data_continuously():
    sim, port, sram = make_mem_system()
    dma = sim.add(
        DmaEngine(port, src_base=0x0, src_size=0x10000,
                  dst_base=0x20000, dst_size=0x10000, burst_beats=64)
    )
    sim.run(3000)
    assert dma.read_bursts >= 3
    assert dma.write_bursts >= 2
    assert dma.bytes_read >= dma.bytes_written


def test_dma_stop_start():
    sim, port, sram = make_mem_system()
    dma = sim.add(
        DmaEngine(port, src_base=0x0, src_size=0x10000,
                  dst_base=0x20000, dst_size=0x10000, burst_beats=16)
    )
    sim.run(500)
    dma.stop()
    reads_at_stop = dma.read_bursts
    sim.run(1000)
    # In-flight work drains but no new read bursts start.
    assert dma.read_bursts <= reads_at_stop + 2


def test_dma_keeps_multiple_reads_outstanding():
    """Double buffering: the engine pipelines its read bursts."""
    sim, port, sram = make_mem_system()
    dma = sim.add(
        DmaEngine(port, src_base=0x0, src_size=0x10000,
                  dst_base=0x20000, dst_size=0x10000,
                  burst_beats=64, n_buffers=2)
    )
    sim.run(40)
    assert dma._rd_inflight >= 2  # both buffers being filled early on


def test_dma_validates_params():
    sim, port, _ = make_mem_system()
    with pytest.raises(ValueError):
        DmaEngine(port, 0, 0x10000, 0x20000, 0x10000, burst_beats=0)
    with pytest.raises(ValueError):
        DmaEngine(port, 0, 64, 0x20000, 0x10000, burst_beats=256)


def test_dma_inter_burst_gap_lowers_throughput():
    rates = {}
    for gap in (0, 50):
        sim, port, sram = make_mem_system()
        dma = sim.add(
            DmaEngine(port, src_base=0x0, src_size=0x10000,
                      dst_base=0x20000, dst_size=0x10000,
                      burst_beats=16, inter_burst_gap=gap)
        )
        sim.run(2000)
        rates[gap] = dma.bytes_read
    assert rates[50] < rates[0]


# ----------------------------------------------------------------------
# malicious managers
# ----------------------------------------------------------------------
def test_stalling_writer_never_completes():
    sim, port, sram = make_mem_system()
    staller = sim.add(StallingWriter(port, beats=16))
    sim.run(1000)
    assert staller.aws_sent == 1
    assert sram.writes_served == 0  # memory stuck waiting for W data


def test_bandwidth_hog_saturates():
    sim, port, sram = make_mem_system()
    hog = sim.add(BandwidthHog(port, target_base=0, window=0x10000, beats=64))
    sim.run(2000)
    # Close to one beat per cycle of stolen read bandwidth.
    assert hog.bytes_stolen > 0.7 * 8 * 2000


def test_trickling_writer_eventually_completes():
    sim, port, sram = make_mem_system()
    trickler = sim.add(TricklingWriter(port, beats=4, gap=10))
    sim.run(200)
    assert trickler.bursts_completed >= 1
    assert sram.writes_served >= 1
