"""Property-based tests for the scenario loader and campaign expansion.

Two contracts, checked under randomized inputs:

* **Round-trip identity** — ``parse -> expand -> serialize -> parse``
  reproduces the same spec: every valid scenario dict validates to a
  spec whose ``to_dict()`` re-validates equal, every expanded campaign
  point does too, and the JSON serialization round-trips.  Expansion is
  deterministic: labels and derived seeds never depend on anything but
  the file content.

* **Error discipline** — arbitrarily corrupted scenario dicts either
  still validate (benign mutation) or raise :class:`ScenarioError`;
  never a raw ``KeyError``/``TypeError``/``AttributeError`` from the
  loader's internals.
"""

from __future__ import annotations

import copy

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenario import (
    ScenarioError,
    apply_smoke,
    dumps,
    expand,
    loads,
    validate,
)

# ----------------------------------------------------------------------
# valid scenario dicts
# ----------------------------------------------------------------------
_REGULATORS = [
    {"kind": "abu", "budget_bytes": 1024, "period_cycles": 500},
    {"kind": "abe", "nominal_burst": 2},
    {"kind": "cnf", "depth_beats": 64},
]


@st.composite
def manager_dicts(draw, name: str) -> dict:
    style = draw(st.sampled_from(["bare", "realm", "regulator"]))
    manager: dict = {"name": name}
    if style == "realm":
        manager["protect"] = True
        if draw(st.booleans()):
            manager["granularity"] = draw(st.sampled_from([1, 8, 64, 256]))
        if draw(st.booleans()):
            manager["regions"] = [{
                "base": 0,
                "size": 0x10000,
                "budget_bytes": draw(
                    st.sampled_from([256, 4096, "unlimited"])
                ),
                "period_cycles": draw(st.sampled_from([200, "unlimited"])),
            }]
        if draw(st.booleans()):
            manager["realm"] = {
                "n_regions": draw(st.integers(1, 4)),
                "write_buffer_depth": draw(st.sampled_from([8, 16, 32])),
            }
        if draw(st.booleans()):
            manager["regulation"] = draw(st.booleans())
    elif style == "regulator":
        manager["regulator"] = draw(st.sampled_from(_REGULATORS))
    return manager


@st.composite
def traffic_dicts(draw) -> dict:
    kind = draw(st.sampled_from(["core", "hog", "staller", "trickler"]))
    if kind == "core":
        binding = {
            "kind": "core",
            "pattern": draw(st.sampled_from(
                ["susan", "sequential", "random", "strided"]
            )),
            "n_accesses": draw(st.integers(1, 50)),
            "footprint": 4096,
        }
        if draw(st.booleans()):
            binding["seed"] = draw(st.integers(0, 2**31))
        return binding
    if kind == "hog":
        return {"kind": "hog", "window": 0x8000,
                "beats": draw(st.sampled_from([1, 16, 256]))}
    if kind == "staller":
        return {"kind": "staller", "repeat": draw(st.booleans())}
    return {"kind": "trickler", "gap": draw(st.integers(1, 100))}


@st.composite
def scenario_dicts(draw) -> dict:
    n_managers = draw(st.integers(min_value=1, max_value=3))
    names = [f"m{i}" for i in range(n_managers)]
    managers = [draw(manager_dicts(name)) for name in names]
    memories = [{"name": "mem", "kind": "sram", "base": 0, "size": 0x20000}]
    if draw(st.booleans()):
        memories.append({
            "name": "dram",
            "kind": draw(st.sampled_from(["dram", "cached_dram"])),
            "base": 0x8000_0000,
            "size": 0x2_0000,
        })
    traffic = {
        name: draw(traffic_dicts())
        for name in names
        if draw(st.booleans())
    }
    raw: dict = {
        "scenario": {
            "name": "prop",
            "seed": draw(st.integers(0, 2**31)),
            "active_set": draw(st.booleans()),
        },
        "run": {"horizon": draw(st.integers(1, 2000))},
        "topology": {
            "interconnect": draw(st.sampled_from(["auto", "crossbar"])),
            "managers": managers,
            "memories": memories,
        },
        "traffic": traffic,
    }
    if draw(st.booleans()):
        raw["campaign"] = {
            "points": [
                {"label": "short", "set": {"run.horizon": 5}},
                {"label": "long", "set": {"run.horizon": 50}},
            ],
            "sweep": [{
                "field": "scenario.seed",
                "values": draw(
                    st.lists(st.integers(0, 100), min_size=1, max_size=3,
                             unique=True)
                ),
            }],
        }
    if draw(st.booleans()):
        raw["smoke"] = {"set": {"run.horizon": 3}}
    return raw


@settings(max_examples=60, deadline=None)
@given(raw=scenario_dicts())
def test_property_parse_expand_serialize_parse_is_identity(raw):
    spec = validate(raw)
    assert validate(spec.to_dict()) == spec
    assert loads(dumps(spec), fmt="json") == spec
    points = expand(spec)
    assert points, "expansion always yields at least one point"
    for point in points:
        assert validate(point.spec.to_dict()) == point.spec
        assert not point.spec.campaign.points
        assert not point.spec.campaign.sweep
    smoked = apply_smoke(spec)
    assert validate(smoked.to_dict()) == smoked


@settings(max_examples=30, deadline=None)
@given(raw=scenario_dicts())
def test_property_expansion_is_deterministic(raw):
    spec = validate(raw)
    first = [(p.label, p.seed) for p in expand(spec)]
    second = [(p.label, p.seed) for p in expand(validate(copy.deepcopy(raw)))]
    assert first == second
    assert len({label for label, _ in first}) == len(first), "labels unique"


# ----------------------------------------------------------------------
# error discipline under corruption
# ----------------------------------------------------------------------
_JUNK = [None, -1, 3.14, "zzz", "", [], {}, True, [1, 2], {"x": 1}, 2**70]


def _paths(node, prefix=()):
    """All key paths into a nested dict/list tree."""
    out = [prefix] if prefix else []
    if isinstance(node, dict):
        for key, value in node.items():
            out.extend(_paths(value, prefix + (key,)))
    elif isinstance(node, list):
        for i, value in enumerate(node):
            out.extend(_paths(value, prefix + (i,)))
    return out


def _mutate(tree: dict, path: tuple, action: str, junk) -> None:
    parent = tree
    for segment in path[:-1]:
        parent = parent[segment]
    last = path[-1]
    if action == "delete":
        del parent[last]
    elif action == "replace":
        parent[last] = junk
    else:  # inject an unknown key next to the target
        target = parent[last] if action == "inject-into" else parent
        if isinstance(target, dict):
            target["bogus_field"] = junk
        else:
            parent[last] = junk


@settings(max_examples=150, deadline=None)
@given(
    raw=scenario_dicts(),
    data=st.data(),
)
def test_property_corrupted_scenarios_raise_scenario_error_only(raw, data):
    paths = _paths(raw)
    path = data.draw(st.sampled_from(paths))
    action = data.draw(st.sampled_from(["delete", "replace", "inject-into"]))
    junk = data.draw(st.sampled_from(_JUNK))
    corrupted = copy.deepcopy(raw)
    _mutate(corrupted, path, action, junk)
    try:
        spec = validate(corrupted)
    except ScenarioError:
        return  # the contract: precise scenario errors only
    # Benign mutation: the result must still round-trip and expand
    # without leaking raw exceptions either.
    try:
        expand(spec)
    except ScenarioError:
        return
    assert validate(spec.to_dict()) == spec


@settings(max_examples=50, deadline=None)
@given(text=st.text(max_size=200))
def test_property_garbage_text_raises_scenario_error(text):
    for fmt in ("toml", "json"):
        try:
            loads(text, fmt=fmt)
        except ScenarioError:
            pass  # never a raw parser exception
